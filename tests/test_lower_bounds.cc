#include "core/lower_bounds.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/random_subset_system.h"
#include "quorum/grid.h"
#include "quorum/measures.h"
#include "quorum/singleton.h"
#include "quorum/threshold.h"

namespace pqs::core {
namespace {

TEST(StrictBounds, Table1Formulas) {
  EXPECT_DOUBLE_EQ(strict_load_lower_bound(100), 0.1);
  EXPECT_DOUBLE_EQ(strict_dissemination_load_lower_bound(100, 3), 0.2);
  EXPECT_NEAR(strict_masking_load_lower_bound(100, 4), 0.3, 1e-12);
  EXPECT_EQ(strict_dissemination_max_b(100), 33);
  EXPECT_EQ(strict_masking_max_b(100), 24);
  EXPECT_EQ(strict_dissemination_max_b(25), 8);
  EXPECT_EQ(strict_masking_max_b(25), 6);
}

TEST(StrictBounds, EveryStrictConstructionRespectsLoadBound) {
  for (std::uint32_t n : {25u, 100u, 400u, 900u}) {
    EXPECT_GE(quorum::ThresholdSystem::majority(n).load() + 1e-12,
              strict_load_lower_bound(n));
    EXPECT_GE(quorum::GridSystem::square(n).load() + 1e-12,
              strict_load_lower_bound(n));
    EXPECT_GE(quorum::SingletonSystem(n).load() + 1e-12,
              strict_load_lower_bound(n));
  }
}

TEST(StrictBounds, ByzantineConstructionsRespectTheirBounds) {
  for (std::uint32_t n : {100u, 400u, 900u}) {
    const std::uint32_t b = (static_cast<std::uint32_t>(std::sqrt(n)) - 1) / 2;
    EXPECT_GE(quorum::ThresholdSystem::dissemination(n, b).load() + 1e-12,
              strict_dissemination_load_lower_bound(n, b));
    EXPECT_GE(quorum::GridSystem::dissemination(n, b).load() + 1e-12,
              strict_dissemination_load_lower_bound(n, b));
    EXPECT_GE(quorum::ThresholdSystem::masking(n, b).load() + 1e-12,
              strict_masking_load_lower_bound(n, b));
    EXPECT_GE(quorum::GridSystem::masking(n, b).load() + 1e-12,
              strict_masking_load_lower_bound(n, b));
  }
}

TEST(ProbabilisticLoadBound, Theorem39HoldsForConstruction) {
  // L = q/n must dominate max(E|Q|/n, (1-sqrt(eps))^2/E|Q|).
  for (std::uint32_t n : {100u, 225u, 400u, 900u}) {
    const auto sys = RandomSubsetSystem::intersecting(n, 1e-3);
    const double bound = probabilistic_load_lower_bound(
        sys.quorum_size(), n, sys.epsilon());
    EXPECT_GE(sys.load() + 1e-12, bound) << "n=" << n;
  }
}

TEST(ProbabilisticLoadBound, Corollary312) {
  for (std::uint32_t n : {100u, 400u, 900u}) {
    const auto sys = RandomSubsetSystem::intersecting(n, 1e-3);
    EXPECT_GE(sys.load() + 1e-12,
              probabilistic_load_floor(n, sys.epsilon()));
    // The floor itself is below the strict 1/sqrt(n) floor (epsilon > 0).
    EXPECT_LE(probabilistic_load_floor(n, sys.epsilon()),
              strict_load_lower_bound(n));
  }
}

TEST(ProbabilisticLoadBound, ConstructionIsNearOptimal) {
  // The construction's load q/n exceeds the Theorem 3.9 floor by at most
  // a factor ~l^2: check it stays within one order of magnitude.
  const auto sys = RandomSubsetSystem::intersecting(900, 1e-3);
  const double floor = probabilistic_load_floor(900, sys.epsilon());
  EXPECT_LT(sys.load() / floor, 10.0);
}

TEST(MaskingLoadBound, Theorem55HoldsForConstruction) {
  for (auto [n, b] : {std::pair{100u, 4u}, std::pair{400u, 9u},
                      std::pair{900u, 14u}, std::pair{900u, 90u}}) {
    const auto sys = RandomSubsetSystem::masking(n, b, 1e-3);
    const double bound =
        probabilistic_masking_load_lower_bound(n, b, sys.epsilon());
    EXPECT_GT(sys.load(), bound) << "n=" << n << " b=" << b;
  }
}

TEST(MaskingLoadBound, BeatsStrictBoundForLargeB) {
  // Section 5.5: for b = omega(sqrt(n)) with constant l the probabilistic
  // load o(sqrt(b/n)) beats the strict Omega(sqrt(b/n)). Concrete: n=900,
  // b=90 => strict floor sqrt(181/900) ~ 0.449.
  const std::uint32_t n = 900, b = 90;
  const auto sys = RandomSubsetSystem::masking(n, b, 1e-3);
  EXPECT_LT(sys.load(), strict_masking_load_lower_bound(n, b));
}

TEST(MaskingLoadBound, RejectsEpsilonAboveHalf) {
  EXPECT_THROW(probabilistic_masking_load_lower_bound(100, 10, 0.6),
               std::invalid_argument);
}

TEST(StrictFailureBound, ShapeAndCrossover) {
  // Below 1/2 the majority bound is tiny; above 1/2 the singleton (p) wins.
  EXPECT_LT(strict_failure_probability_lower_bound(300, 0.2), 1e-20);
  EXPECT_DOUBLE_EQ(strict_failure_probability_lower_bound(300, 0.7), 0.7);
  EXPECT_DOUBLE_EQ(strict_failure_probability_lower_bound(300, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(strict_failure_probability_lower_bound(300, 0.0), 0.0);
}

TEST(StrictFailureBound, ProbabilisticConstructionBeatsItAboveHalf) {
  // Figures 1-3's headline: for p in [1/2, 1 - l/sqrt(n)], R(n, l sqrt(n))
  // has failure probability below what ANY strict system can achieve.
  const auto sys = RandomSubsetSystem::intersecting(300, 1e-3);
  for (double p : {0.5, 0.55, 0.6, 0.7, 0.75}) {
    EXPECT_LT(sys.failure_probability(p),
              strict_failure_probability_lower_bound(300, p))
        << "p=" << p;
  }
}

TEST(StrictFailureBound, MajorityMatchesBoundBelowHalf) {
  // The bound *is* the majority system's curve below 1/2 for equal n.
  const auto majority = quorum::ThresholdSystem::majority(300);
  for (double p : {0.1, 0.3, 0.45}) {
    EXPECT_DOUBLE_EQ(strict_failure_probability_lower_bound(300, p),
                     majority.failure_probability(p));
  }
}

}  // namespace
}  // namespace pqs::core

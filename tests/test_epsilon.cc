// Tests for the exact epsilon computations and the paper's bounds — the
// analytical heart of the reproduction.
#include "core/epsilon.h"

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "math/combinatorics.h"
#include "quorum/set_system.h"

namespace pqs::core {
namespace {

// ---- Exact nonintersection ------------------------------------------------

TEST(NonintersectionExact, HandValues) {
  // C(16,9)/C(25,9) = 11440 / 2042975.
  EXPECT_NEAR(nonintersection_exact(25, 9), 11440.0 / 2042975.0, 1e-12);
  // Overlap forced when 2q > n.
  EXPECT_DOUBLE_EQ(nonintersection_exact(10, 6), 0.0);
  EXPECT_NEAR(nonintersection_exact(10, 5), 1.0 / 252.0, 1e-12);
}

TEST(NonintersectionExact, MatchesExplicitEnumeration) {
  // Direct pairwise enumeration over all quorums of the explicit R(n, q).
  for (auto [n, q] : {std::tuple{6, 2}, std::tuple{8, 3}, std::tuple{10, 4},
                      std::tuple{9, 3}}) {
    const auto sys = quorum::SetSystem::all_subsets(n, q);
    const double enumerated = 1.0 - sys.intersection_probability();
    EXPECT_NEAR(nonintersection_exact(n, q), enumerated, 1e-10)
        << "n=" << n << " q=" << q;
  }
}

TEST(NonintersectionExact, MonotoneDecreasingInQ) {
  for (std::int64_t q = 1; q < 50; ++q) {
    EXPECT_GE(nonintersection_exact(100, q),
              nonintersection_exact(100, q + 1));
  }
}

TEST(NonintersectionBound, DominatesExact) {
  // Lemma 3.15: exact < e^{-l^2}, for every n, q.
  for (std::int64_t n : {25, 100, 225, 400, 900}) {
    for (std::int64_t q = 1; q <= n / 2; q += 3) {
      EXPECT_LT(nonintersection_exact(n, q), nonintersection_bound(n, q))
          << "n=" << n << " q=" << q;
    }
  }
}

TEST(NonintersectionBound, TightensAsNGrows) {
  // At fixed l = 2, bound / exact approaches a modest constant; sanity-check
  // that the bound is not wildly loose at large n.
  const double exact = nonintersection_exact(10000, 200);
  const double bound = nonintersection_bound(10000, 200);
  EXPECT_LT(bound / exact, 10.0);
  EXPECT_GT(bound / exact, 1.0);
}

// ---- Dissemination epsilon -------------------------------------------------

TEST(DisseminationExact, ReducesToNonintersectionAtBZero) {
  for (auto [n, q] : {std::tuple{25, 9}, std::tuple{100, 22},
                      std::tuple{50, 10}}) {
    EXPECT_NEAR(dissemination_epsilon_exact(n, q, 0),
                nonintersection_exact(n, q), 1e-12);
  }
}

TEST(DisseminationExact, HandComputedValue) {
  // Worked in the reproduction notes: n=25, q=11, b=2 gives ~3.62e-4 and
  // q=10 gives ~2.44e-3 — this is what pins Table 3's l=2.20 for n=25.
  EXPECT_NEAR(dissemination_epsilon_exact(25, 11, 2), 3.62e-4, 2e-5);
  EXPECT_NEAR(dissemination_epsilon_exact(25, 10, 2), 2.44e-3, 5e-5);
}

TEST(DisseminationExact, MatchesExplicitEnumeration) {
  // Brute force over an explicit tiny system: P(Q ∩ Q' ⊆ B), B = {0..b-1}.
  const std::int64_t n = 8, q = 3, b = 2;
  const auto sys = quorum::SetSystem::all_subsets(n, q);
  double fail = 0.0;
  const auto& quorums = sys.quorums();
  const double w = 1.0 / static_cast<double>(quorums.size());
  for (const auto& a : quorums) {
    for (const auto& bq : quorums) {
      bool outside = false;
      for (auto u : a) {
        for (auto v : bq) {
          if (u == v && u >= b) outside = true;
        }
      }
      if (!outside) fail += w * w;
    }
  }
  EXPECT_NEAR(dissemination_epsilon_exact(n, q, b), fail, 1e-10);
}

TEST(DisseminationExact, MonotoneIncreasingInB) {
  for (std::int64_t b = 0; b < 40; ++b) {
    EXPECT_LE(dissemination_epsilon_exact(100, 22, b),
              dissemination_epsilon_exact(100, 22, b + 1) + 1e-15);
  }
}

TEST(DisseminationExact, MonotoneDecreasingInQ) {
  for (std::int64_t q = 5; q < 60; ++q) {
    EXPECT_GE(dissemination_epsilon_exact(100, q, 10) + 1e-15,
              dissemination_epsilon_exact(100, q + 1, 10));
  }
}

TEST(DisseminationBounds, ThirdDominatesExactAtBThird) {
  // Lemma 4.3: P <= 2 e^{-l^2/6} for b = n/3.
  for (std::int64_t n : {27, 99, 300, 900}) {
    const std::int64_t b = n / 3;
    for (std::int64_t q = 3; q <= n - b; q += 5) {
      EXPECT_LE(dissemination_epsilon_exact(n, q, b),
                dissemination_bound_third(n, q) + 1e-12)
          << "n=" << n << " q=" << q;
    }
  }
}

TEST(DisseminationBounds, AlphaDominatesExact) {
  // Lemma 4.5 for alpha in (1/3, 1).
  for (double alpha : {0.4, 0.5, 0.6, 0.75}) {
    const std::int64_t n = 400;
    const auto b = static_cast<std::int64_t>(alpha * n);
    for (std::int64_t q = 5; q <= n - b; q += 7) {
      EXPECT_LE(dissemination_epsilon_exact(n, q, b),
                dissemination_bound_alpha(n, q, alpha) + 1e-12)
          << "alpha=" << alpha << " q=" << q;
    }
  }
}

TEST(DisseminationExact, GracefulDegradation) {
  // Section 4.2 remark: fewer actual faults => smaller epsilon.
  const std::int64_t n = 100, q = 24;
  double prev = 0.0;
  for (std::int64_t f = 0; f <= 33; ++f) {
    const double eps = dissemination_epsilon_exact(n, q, f);
    EXPECT_GE(eps + 1e-15, prev);
    prev = eps;
  }
}

// ---- Masking epsilon --------------------------------------------------------

TEST(MaskingThreshold, MatchesFormula) {
  EXPECT_EQ(masking_threshold(25, 15), 5);   // 225/50 = 4.5 -> 5
  EXPECT_EQ(masking_threshold(100, 38), 8);  // 1444/200 = 7.22 -> 8
  EXPECT_EQ(masking_threshold(900, 152), 13);  // 23104/1800 = 12.8 -> 13
  EXPECT_EQ(masking_threshold(100, 10), 1);  // 100/200 = 0.5 -> >= 1
}

TEST(MaskingThreshold, BetweenExpectations) {
  // Section 5.3: E[X] < k < E[Y] must hold for l = q/b > 2 (with some slack
  // for rounding at realistic sizes).
  for (auto [n, q, b] : {std::tuple{100, 38, 4}, std::tuple{400, 94, 9},
                         std::tuple{900, 152, 14}}) {
    const auto k = masking_threshold(n, q);
    EXPECT_GT(static_cast<double>(k), expected_faulty_overlap(n, q, b));
    EXPECT_LT(static_cast<double>(k), expected_correct_overlap(n, q, b));
  }
}

TEST(MaskingExact, HandComputedValues) {
  // Exact joint computation at the paper's Table 4 row n=25 (q=15, b=2):
  // with k = ceil(q^2/2n) = 5 the epsilon is 1.102e-3 (a hair above the
  // 1e-3 target — see EXPERIMENTS.md for the Table 4 convention
  // discussion); with k = floor = 4 it is 3.06e-5.
  EXPECT_NEAR(masking_epsilon_exact(25, 15, 2, 5), 1.102e-3, 2e-6);
  EXPECT_NEAR(masking_epsilon_exact(25, 15, 2, 4), 3.06e-5, 5e-7);
  EXPECT_NEAR(masking_epsilon_exact(25, 14, 2, 4), 1.65e-3, 5e-5);
}

TEST(MaskingExact, ZeroWhenFaultsCannotReachThresholdAndOverlapForced) {
  // If b < k and |Q ∩ Q'| - b >= k always (pigeonhole: 2q - n - b >= k),
  // the masking read cannot fail.
  const std::int64_t n = 25, q = 18, b = 2;
  const std::int64_t k = masking_threshold(n, q);  // ceil(324/50) = 7
  EXPECT_EQ(k, 7);
  EXPECT_GE(2 * q - n - b, k);
  EXPECT_DOUBLE_EQ(masking_epsilon_exact(n, q, b, k), 0.0);
}

TEST(MaskingExact, OneWhenThresholdUnreachable) {
  // k > q: no value can ever be vouched for by k servers.
  EXPECT_DOUBLE_EQ(masking_epsilon_exact(50, 10, 5, 11), 1.0);
}

TEST(MaskingExact, MatchesExplicitEnumeration) {
  // Brute force Definition 5.1 over all quorum pairs of a tiny system:
  // P(|Q ∩ B| >= k or |Q ∩ Q'\B| < k), B = {0..b-1}.
  const std::int64_t n = 8, q = 4, b = 2, k = 2;
  const auto sys = quorum::SetSystem::all_subsets(n, q);
  const auto& quorums = sys.quorums();
  const double w = 1.0 / static_cast<double>(quorums.size());
  double fail = 0.0;
  for (const auto& read_q : quorums) {
    std::int64_t faulty = 0;
    for (auto u : read_q) faulty += (u < b) ? 1 : 0;
    for (const auto& write_q : quorums) {
      std::int64_t fresh_correct = 0;
      for (auto u : read_q) {
        for (auto v : write_q) {
          if (u == v && u >= b) ++fresh_correct;
        }
      }
      if (faulty >= k || fresh_correct < k) fail += w * w;
    }
  }
  EXPECT_NEAR(masking_epsilon_exact(n, q, b, k), fail, 1e-10);
}

TEST(MaskingExact, MonotoneIncreasingInB) {
  const std::int64_t n = 400, q = 94;
  const auto k = masking_threshold(n, q);
  for (std::int64_t b = 0; b < 40; ++b) {
    EXPECT_LE(masking_epsilon_exact(n, q, b, k),
              masking_epsilon_exact(n, q, b + 1, k) + 1e-15);
  }
}

TEST(MaskingBound, DominatesExact) {
  // Theorem 5.10: eps <= 2 exp(-(q^2/n) min(psi1, psi2)) for l = q/b > 2.
  for (auto [n, b] : {std::tuple{100, 4}, std::tuple{400, 9},
                      std::tuple{900, 14}, std::tuple{900, 30}}) {
    for (std::int64_t q = 3 * b; q <= n - b; q += 11) {
      const auto k = masking_threshold(n, q);
      // 1e-9 absorbs the numerical noise floor of the exact computation
      // (sums of lgamma-based terms) when the true value is ~0.
      EXPECT_LE(masking_epsilon_exact(n, q, b, k),
                masking_bound(n, q, b) + 1e-9)
          << "n=" << n << " b=" << b << " q=" << q;
    }
  }
}

TEST(MaskingPsi, PaperExamples) {
  // Section 5.5 remarks: l = 3 => eps <= 2 e^{-q^2/48n}; l = 20 =>
  // eps <= 2 e^{-q^2/10n} (approximately).
  EXPECT_NEAR(masking_psi2(3.0), 1.0 / 48.0, 1e-12);
  EXPECT_NEAR(std::min(masking_psi1(20.0), masking_psi2(20.0)), 1.0 / 10.0,
              0.02);
}

TEST(MaskingPsi, PiecewiseBranches) {
  constexpr double kFourE = 4.0 * 2.718281828459045;
  // psi1 itself jumps at l = 4e (the two Chernoff regimes of [MR95]):
  // (l/2-1)^2/(4l) ~ 0.4526 just below, 1/3 just above.
  EXPECT_NEAR(masking_psi1(kFourE - 1e-9), 0.45256, 1e-4);
  EXPECT_NEAR(masking_psi1(kFourE + 1e-9), 1.0 / 3.0, 1e-12);
  // But the bound uses min(psi1, psi2) and psi2(4e) ~ 0.092 < 1/3, so the
  // effective exponent is continuous across the branch point.
  EXPECT_NEAR(std::min(masking_psi1(kFourE - 1e-9), masking_psi2(kFourE - 1e-9)),
              std::min(masking_psi1(kFourE + 1e-9), masking_psi2(kFourE + 1e-9)),
              1e-6);
  EXPECT_THROW(masking_psi1(2.0), std::invalid_argument);
  EXPECT_THROW(masking_psi2(1.5), std::invalid_argument);
}

TEST(Expectations, Formulas) {
  // Eq. 13: E[X] = q^2/(l n) with l = q/b, i.e. qb/n.
  EXPECT_DOUBLE_EQ(expected_faulty_overlap(100, 20, 5), 1.0);
  // Eq. 14: E[Y] = (q^2/n)(1 - b/n).
  EXPECT_DOUBLE_EQ(expected_correct_overlap(100, 20, 5), 4.0 * 0.95);
}

// ---- Solvers -----------------------------------------------------------------

TEST(Solvers, IntersectingMinimality) {
  for (std::int64_t n : {25, 100, 225, 400, 625, 900}) {
    const auto q = min_q_intersecting(n, 1e-3);
    ASSERT_TRUE(q.has_value()) << "n=" << n;
    EXPECT_LE(nonintersection_exact(n, *q), 1e-3);
    if (*q > 1) {
      EXPECT_GT(nonintersection_exact(n, *q - 1), 1e-3);
    }
  }
}

TEST(Solvers, IntersectingKnownValues) {
  // Exact-eps minimal q; see EXPERIMENTS.md for the comparison with the
  // paper's slightly smaller Table 2 values.
  EXPECT_EQ(min_q_intersecting(25, 1e-3).value(), 10);   // paper: 9
  EXPECT_EQ(min_q_intersecting(100, 1e-3).value(), 23);  // paper: 22
}

TEST(Solvers, DisseminationReproducesTable3) {
  // The paper's Table 3: (n, b) -> quorum size l*sqrt(n).
  struct Row { std::int64_t n, b, size; };
  for (auto [n, b, size] :
       {Row{25, 2, 11}, Row{100, 4, 24}, Row{225, 7, 37}, Row{400, 9, 50},
        Row{625, 12, 63}, Row{900, 14, 77}}) {
    const auto q = min_q_dissemination(n, b, 1e-3);
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(*q, size) << "n=" << n << " b=" << b;
  }
}

TEST(Solvers, MaskingNearTable4) {
  // The paper's exact procedure for Table 4 is not recoverable (no rounding
  // convention for k = q^2/2n reproduces its l values exactly; see
  // EXPERIMENTS.md). Our exact joint computation with k = ceil(q^2/2n)
  // lands within a few servers of every paper row — assert our own values
  // as a regression anchor next to the paper's.
  struct Row { std::int64_t n, b, paper, ours; };
  for (auto [n, b, paper, ours] :
       {Row{25, 2, 15, 16}, Row{100, 4, 38, 40}, Row{225, 7, 64, 66},
        Row{400, 9, 94, 93}, Row{625, 12, 123, 121},
        Row{900, 14, 152, 146}}) {
    const auto q = min_q_masking(n, b, 1e-3);
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(*q, ours) << "n=" << n << " b=" << b;
    EXPECT_LE(std::abs(*q - paper), 6) << "n=" << n << " b=" << b;
    // Under the floor convention the paper's own (q, k) rows all meet the
    // 1e-3 target, confirming Table 4's parameters are sound.
    const auto k_floor = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(paper * paper / (2 * n)));
    EXPECT_LE(masking_epsilon_exact(n, paper, b, k_floor), 1e-3)
        << "n=" << n << " b=" << b;
  }
}

TEST(Solvers, RespectAvailabilityConstraint) {
  // With b = n/2 no q can give A > b and tiny epsilon simultaneously when
  // the target is strict enough.
  const auto q = min_q_dissemination(20, 10, 1e-9);
  EXPECT_FALSE(q.has_value());
}

TEST(Solvers, DegenerateAndInvalidTargets) {
  // Any target is reachable once 2q > n forces intersection (eps = 0), so
  // the intersecting solver falls back to the majority-ish size.
  EXPECT_EQ(min_q_intersecting(4, 1e-9).value(), 3);
  // With b = n/2 the availability constraint caps q at n - b = n/2, where
  // quorums can still be disjoint — a strict-enough target is infeasible.
  EXPECT_FALSE(min_q_dissemination(20, 10, 1e-9).has_value());
  EXPECT_THROW(min_q_intersecting(100, 0.0), std::invalid_argument);
  EXPECT_THROW(min_q_intersecting(100, 1.0), std::invalid_argument);
}

// Property sweep: for every solver result, the availability constraint and
// epsilon target hold simultaneously.
class SolverSweep
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {
};

TEST_P(SolverSweep, DisseminationSolutionValid) {
  const auto [n, b] = GetParam();
  const auto q = min_q_dissemination(n, b, 1e-3);
  ASSERT_TRUE(q.has_value());
  EXPECT_LE(dissemination_epsilon_exact(n, *q, b), 1e-3);
  EXPECT_GT(n - *q + 1, b);  // A > b
}

TEST_P(SolverSweep, MaskingSolutionValid) {
  const auto [n, b] = GetParam();
  const auto q = min_q_masking(n, b, 1e-3);
  ASSERT_TRUE(q.has_value());
  EXPECT_LE(masking_epsilon_exact(n, *q, b, masking_threshold(n, *q)), 1e-3);
  EXPECT_GT(n - *q + 1, b);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SolverSweep,
    ::testing::Values(std::tuple{100, 4}, std::tuple{100, 10},
                      std::tuple{225, 7}, std::tuple{400, 9},
                      std::tuple{400, 20}, std::tuple{900, 14},
                      std::tuple{900, 30}));

}  // namespace
}  // namespace pqs::core

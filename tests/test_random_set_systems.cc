// Randomized validation of the paper's definitional machinery and lower
// bounds on arbitrary finite set systems.
//
// For randomly generated <Q, w> (random quorums, random strategy weights):
//   * Lemma 3.5:  P(Q in R_delta) >= 1 - eps/delta for the delta-high-
//     quality quorums R_delta;
//   * Lemma 3.10: L_w(Q) >= E|Q| / n;
//   * Lemma 3.11 / Theorem 3.9: L_w(Q) >= (1 - sqrt(eps))^2 / E|Q|;
//   * probabilistic measures never exceed their strict counterparts
//     (A(<Q,w>) <= A(Q), F_p(<Q,w>) >= F_p(Q)).
//
// These hold for EVERY set system and strategy, so testing them on random
// instances is a genuine adversarial check of the implementation (and of
// our reading of the paper).
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "math/rng.h"
#include "math/sampling.h"
#include "quorum/set_system.h"

namespace pqs::quorum {
namespace {

SetSystem random_system(std::uint64_t seed) {
  math::Rng rng(seed);
  const std::uint32_t n = 6 + static_cast<std::uint32_t>(rng.below(8));
  const std::size_t m = 3 + static_cast<std::size_t>(rng.below(9));
  std::vector<Quorum> quorums;
  for (std::size_t i = 0; i < m; ++i) {
    const std::uint32_t size =
        1 + static_cast<std::uint32_t>(rng.below(n));
    quorums.push_back(math::sample_without_replacement(n, size, rng));
  }
  std::vector<double> weights(m);
  double total = 0.0;
  for (auto& w : weights) {
    w = 0.05 + rng.uniform();
    total += w;
  }
  for (auto& w : weights) w /= total;
  // Normalize the tiny floating residue so SetSystem's sum check passes.
  weights.back() += 1.0 - std::accumulate(weights.begin(), weights.end(), 0.0);
  return SetSystem(n, std::move(quorums), std::move(weights));
}

double expected_quorum_size(const SetSystem& sys) {
  double e = 0.0;
  for (std::size_t i = 0; i < sys.quorum_count(); ++i) {
    e += sys.weights()[i] * static_cast<double>(sys.quorums()[i].size());
  }
  return e;
}

class RandomSetSystems : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomSetSystems, Lemma35HighQualityMass) {
  const auto sys = random_system(GetParam());
  const double eps = 1.0 - sys.intersection_probability();
  for (double delta : {0.05, 0.1, 0.25, 0.5, std::sqrt(std::max(eps, 1e-12))}) {
    const auto hq = sys.high_quality_indices(delta);
    double mass = 0.0;
    for (auto i : hq) mass += sys.weights()[i];
    EXPECT_GE(mass + 1e-9, 1.0 - eps / delta)
        << "delta=" << delta << " eps=" << eps;
  }
}

TEST_P(RandomSetSystems, Lemma310LoadAtLeastMeanSizeOverN) {
  const auto sys = random_system(GetParam());
  EXPECT_GE(sys.load() + 1e-12,
            expected_quorum_size(sys) / sys.universe_size());
}

TEST_P(RandomSetSystems, Theorem39LoadBound) {
  const auto sys = random_system(GetParam());
  const double eps = std::max(0.0, 1.0 - sys.intersection_probability());
  const double s = 1.0 - std::sqrt(eps);
  EXPECT_GE(sys.load() + 1e-9, s * s / expected_quorum_size(sys));
}

TEST_P(RandomSetSystems, ProbabilisticMeasuresNeverBeatStrictOnes) {
  const auto sys = random_system(GetParam());
  EXPECT_LE(sys.probabilistic_fault_tolerance(), sys.fault_tolerance());
  for (double p : {0.2, 0.5, 0.8}) {
    EXPECT_GE(sys.probabilistic_failure_probability(p) + 1e-12,
              sys.failure_probability(p))
        << "p=" << p;
  }
}

TEST_P(RandomSetSystems, QualityIsAProbability) {
  const auto sys = random_system(GetParam());
  for (std::size_t i = 0; i < sys.quorum_count(); ++i) {
    const double quality = sys.quorum_quality(i);
    EXPECT_GE(quality, 0.0);
    EXPECT_LE(quality, 1.0 + 1e-12);
  }
}

TEST_P(RandomSetSystems, StrictSystemsHaveInterceptionProbabilityOne) {
  const auto sys = random_system(GetParam());
  if (sys.is_strict()) {
    EXPECT_NEAR(sys.intersection_probability(), 1.0, 1e-9);
    EXPECT_EQ(sys.probabilistic_fault_tolerance(), sys.fault_tolerance());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSetSystems,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace pqs::quorum

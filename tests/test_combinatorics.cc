#include "math/combinatorics.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace pqs::math {
namespace {

TEST(LogFactorial, BaseCases) {
  EXPECT_DOUBLE_EQ(log_factorial(0), 0.0);
  EXPECT_DOUBLE_EQ(log_factorial(1), 0.0);
  EXPECT_NEAR(log_factorial(2), std::log(2.0), 1e-12);
  EXPECT_NEAR(log_factorial(5), std::log(120.0), 1e-12);
  EXPECT_NEAR(log_factorial(10), std::log(3628800.0), 1e-10);
}

TEST(LogFactorial, RejectsNegative) {
  EXPECT_THROW(log_factorial(-1), std::invalid_argument);
}

TEST(LogChoose, MatchesExactSmall) {
  for (std::int64_t n = 0; n <= 30; ++n) {
    for (std::int64_t k = 0; k <= n; ++k) {
      const double expected = std::log(static_cast<double>(choose_exact(n, k)));
      EXPECT_NEAR(log_choose(n, k), expected, 1e-9)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(LogChoose, OutOfRangeIsNegInf) {
  EXPECT_EQ(log_choose(5, -1), kNegInf);
  EXPECT_EQ(log_choose(5, 6), kNegInf);
  EXPECT_EQ(log_choose(-2, 0), kNegInf);
}

TEST(LogChoose, Symmetry) {
  for (std::int64_t n = 1; n <= 200; n += 13) {
    for (std::int64_t k = 0; k <= n; k += 7) {
      EXPECT_NEAR(log_choose(n, k), log_choose(n, n - k), 1e-9);
    }
  }
}

TEST(LogChoose, PascalIdentity) {
  // C(n, k) = C(n-1, k-1) + C(n-1, k) in log space.
  for (std::int64_t n = 2; n <= 120; n += 11) {
    for (std::int64_t k = 1; k < n; k += 5) {
      const double lhs = log_choose(n, k);
      const double rhs = log_add(log_choose(n - 1, k - 1), log_choose(n - 1, k));
      EXPECT_NEAR(lhs, rhs, 1e-9) << "n=" << n << " k=" << k;
    }
  }
}

TEST(ChooseExact, KnownValues) {
  EXPECT_EQ(choose_exact(0, 0), 1u);
  EXPECT_EQ(choose_exact(5, 2), 10u);
  EXPECT_EQ(choose_exact(25, 9), 2042975u);
  EXPECT_EQ(choose_exact(52, 5), 2598960u);
  EXPECT_EQ(choose_exact(10, 11), 0u);
}

TEST(ChooseExact, OverflowThrows) {
  EXPECT_THROW(choose_exact(200, 100), std::overflow_error);
}

TEST(LogAdd, Basics) {
  EXPECT_NEAR(log_add(std::log(2.0), std::log(3.0)), std::log(5.0), 1e-12);
  EXPECT_EQ(log_add(kNegInf, kNegInf), kNegInf);
  EXPECT_DOUBLE_EQ(log_add(kNegInf, 1.5), 1.5);
  EXPECT_DOUBLE_EQ(log_add(-0.5, kNegInf), -0.5);
}

TEST(LogAdd, ExtremeMagnitudeDifference) {
  // Adding something 1000 e-folds smaller must not change the larger term.
  EXPECT_DOUBLE_EQ(log_add(0.0, -1000.0), 0.0);
}

TEST(LogSum, MatchesDirectSummation) {
  const std::vector<double> logs = {std::log(0.1), std::log(0.25),
                                    std::log(0.3), std::log(0.05)};
  EXPECT_NEAR(log_sum(logs), std::log(0.7), 1e-12);
}

TEST(LogSum, EmptyIsNegInf) {
  EXPECT_EQ(log_sum(std::vector<double>{}), kNegInf);
}

TEST(LogSum, AllNegInf) {
  const std::vector<double> logs = {kNegInf, kNegInf};
  EXPECT_EQ(log_sum(logs), kNegInf);
}

TEST(ExpProbability, ClampsToUnitInterval) {
  EXPECT_DOUBLE_EQ(exp_probability(kNegInf), 0.0);
  EXPECT_DOUBLE_EQ(exp_probability(0.0), 1.0);
  EXPECT_DOUBLE_EQ(exp_probability(1e-15), 1.0);  // rounding noise above 0
  EXPECT_NEAR(exp_probability(std::log(0.5)), 0.5, 1e-12);
}

TEST(LogChoose, LargeValuesFinite) {
  // C(900, 450) overflows double massively; log form must stay finite.
  const double v = log_choose(900, 450);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_GT(v, 600.0);  // ~ 900 ln 2 - O(log n)
  EXPECT_LT(v, 624.0);  // strictly below 900 ln 2
}

}  // namespace
}  // namespace pqs::math

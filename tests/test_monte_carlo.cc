// Statistical cross-validation: every exact analysis must sit inside the
// Wilson interval of its Monte-Carlo estimate (z = 4.4, i.e. ~1e-5 chance
// of a false alarm per check even before discreteness slack).
//
// All estimators run on the sharded core::Estimator engine (the shared
// default unless a test passes its own); test_estimator.cc covers the
// engine's determinism contract, this file covers statistical correctness.
#include "core/monte_carlo.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/epsilon.h"
#include "core/estimator.h"
#include "core/random_subset_system.h"
#include "quorum/grid.h"
#include "quorum/threshold.h"

namespace pqs::core {
namespace {

constexpr double kZ = 4.4;

TEST(MonteCarlo, NonintersectionMatchesExact) {
  math::Rng rng(101);
  const RandomSubsetSystem sys(64, 8);  // exact eps ~ 0.32
  const auto est = estimate_nonintersection(sys, 200000, rng);
  EXPECT_TRUE(est.wilson(kZ).contains(nonintersection_exact(64, 8)))
      << est.estimate();
}

TEST(MonteCarlo, NonintersectionMatchesExactOnExplicitEngine) {
  // Same statistical check through a caller-owned multi-threaded engine.
  Estimator engine({4});
  math::Rng rng(102);
  const RandomSubsetSystem sys(64, 8);
  const auto est = estimate_nonintersection(sys, 200000, rng, engine);
  EXPECT_TRUE(est.wilson(kZ).contains(nonintersection_exact(64, 8)))
      << est.estimate();
}

TEST(MonteCarlo, NonintersectionZeroForStrict) {
  math::Rng rng(103);
  const quorum::ThresholdSystem sys(21, 11);
  const auto est = estimate_nonintersection(sys, 20000, rng);
  EXPECT_EQ(est.successes(), 0u);
}

TEST(MonteCarlo, DisseminationEpsilonMatchesExact) {
  math::Rng rng(107);
  const RandomSubsetSystem sys(60, 10);
  const double exact = dissemination_epsilon_exact(60, 10, 12);
  ASSERT_GT(exact, 0.01);  // keep the statistical test well-powered
  const auto est = estimate_dissemination_epsilon(sys, 12, 200000, rng);
  EXPECT_TRUE(est.wilson(kZ).contains(exact))
      << est.estimate() << " vs " << exact;
}

TEST(MonteCarlo, MaskingEpsilonMatchesExact) {
  math::Rng rng(109);
  const std::uint32_t n = 80, q = 24, b = 8;
  const auto k = static_cast<std::uint32_t>(masking_threshold(n, q));
  const RandomSubsetSystem sys(n, q);
  const double exact = masking_epsilon_exact(n, q, b, k);
  const auto est = estimate_masking_epsilon(sys, b, k, 200000, rng);
  EXPECT_TRUE(est.wilson(kZ).contains(exact))
      << est.estimate() << " vs " << exact;
}

TEST(MonteCarlo, LoadMatchesAnalyticUniform) {
  math::Rng rng(113);
  const RandomSubsetSystem sys(50, 10);
  const auto loads = estimate_server_loads(sys, 100000, rng);
  for (auto l : loads) EXPECT_NEAR(l, 0.2, 0.02);
  EXPECT_NEAR(estimate_load(sys, 100000, rng), sys.load(), 0.02);
}

TEST(MonteCarlo, LoadMatchesAnalyticGrid) {
  math::Rng rng(127);
  const auto sys = quorum::GridSystem::square(49);
  EXPECT_NEAR(estimate_load(sys, 100000, rng), sys.load(), 0.02);
}

TEST(MonteCarlo, FailureProbabilityMatchesBinomialTail) {
  math::Rng rng(131);
  const RandomSubsetSystem sys(60, 15);
  for (double p : {0.6, 0.7, 0.75}) {
    const auto est = estimate_failure_probability(sys, p, 100000, rng);
    EXPECT_TRUE(est.wilson(kZ).contains(sys.failure_probability(p)))
        << "p=" << p << " est=" << est.estimate();
  }
}

TEST(MonteCarlo, FailureProbabilityMatchesGridMonteCarlo) {
  math::Rng rng(137);
  const auto sys = quorum::GridSystem::square(36);
  const auto est = estimate_failure_probability(sys, 0.3, 100000, rng);
  // grid failure_probability() is itself Monte-Carlo (fixed seed); allow
  // both estimates' noise.
  EXPECT_NEAR(est.estimate(), sys.failure_probability(0.3), 0.01);
}

TEST(MonteCarlo, SplitStrategyBreaksEpsilon) {
  // Section 3.1 remark: the same set system under a bad strategy loses the
  // intersection guarantee — nonintersection ~ 1/2 instead of exact eps.
  math::Rng rng(139);
  const std::uint32_t n = 100, q = 23;
  const auto bad = estimate_split_strategy_nonintersection(n, q, 50000, rng);
  EXPECT_GT(bad.estimate(), 0.45);
  EXPECT_LT(bad.estimate(), 0.55);
  EXPECT_LT(nonintersection_exact(n, q), 1e-3);  // uniform would be fine
}

TEST(MonteCarlo, EstimatorsAreDeterministicPerSeed) {
  const RandomSubsetSystem sys(40, 9);
  math::Rng r1(997), r2(997);
  const auto a = estimate_nonintersection(sys, 5000, r1);
  const auto b = estimate_nonintersection(sys, 5000, r2);
  EXPECT_EQ(a.successes(), b.successes());
}

// Sweep: MC vs exact across a (n, q, b) grid for dissemination epsilon.
class McDisseminationSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(McDisseminationSweep, WithinConfidence) {
  const auto [n, q, b] = GetParam();
  math::Rng rng(1000 + n * 31 + q * 7 + b);
  const RandomSubsetSystem sys(n, q);
  const double exact = dissemination_epsilon_exact(n, q, b);
  const auto est = estimate_dissemination_epsilon(sys, b, 150000, rng);
  EXPECT_TRUE(est.wilson(kZ).contains(exact))
      << "n=" << n << " q=" << q << " b=" << b << " est=" << est.estimate()
      << " exact=" << exact;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, McDisseminationSweep,
    ::testing::Values(std::tuple{40, 8, 5}, std::tuple{40, 8, 13},
                      std::tuple{60, 12, 20}, std::tuple{80, 10, 26},
                      std::tuple{100, 12, 33}, std::tuple{100, 20, 50}));

}  // namespace
}  // namespace pqs::core

// The Monte-Carlo engine's contract: fixed-shard determinism (results are
// a function of the seed and shard grid, never of the thread count), RNG
// substream independence, and worker-pool semantics.
#include "core/estimator.h"

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/monte_carlo.h"
#include "core/random_subset_system.h"
#include "math/rng.h"
#include "util/worker_pool.h"

namespace pqs::core {
namespace {

TEST(WorkerPool, RunsEveryIndexExactlyOnce) {
  util::WorkerPool pool(4);
  constexpr std::uint64_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.run(kCount, [&](std::uint64_t i) { ++hits[i]; });
  for (std::uint64_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(WorkerPool, SingleThreadRunsInline) {
  util::WorkerPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  std::uint64_t sum = 0;
  pool.run(100, [&](std::uint64_t i) { sum += i; });
  EXPECT_EQ(sum, 4950u);
}

TEST(WorkerPool, PropagatesExceptions) {
  util::WorkerPool pool(4);
  EXPECT_THROW(
      pool.run(64,
               [&](std::uint64_t i) {
                 if (i == 13) throw std::runtime_error("boom");
               }),
      std::runtime_error);
  // The pool survives a throwing batch and stays usable.
  std::atomic<int> ran{0};
  pool.run(8, [&](std::uint64_t) { ++ran; });
  EXPECT_EQ(ran.load(), 8);
}

TEST(WorkerPool, ConcurrentCallersSerialize) {
  // The shared estimator can be driven from several threads at once; whole
  // batches must serialize rather than corrupt each other's state.
  util::WorkerPool pool(4);
  constexpr int kCallers = 4;
  std::atomic<std::uint64_t> sums[kCallers] = {};
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &sums, c] {
      pool.run(100, [&sums, c](std::uint64_t i) { sums[c] += i; });
    });
  }
  for (auto& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c) EXPECT_EQ(sums[c].load(), 4950u);
}

TEST(WorkerPool, ReusableAcrossBatches) {
  util::WorkerPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::uint64_t> sum{0};
    pool.run(round + 1, [&](std::uint64_t i) { sum += i + 1; });
    EXPECT_EQ(sum.load(),
              static_cast<std::uint64_t>(round + 1) * (round + 2) / 2);
  }
}

TEST(Estimator, ShardSamplesSumToTotal) {
  Estimator engine({2, 7});  // 7 shards so samples don't divide evenly
  math::Rng rng(1);
  const auto total = engine.run_trials<std::uint64_t>(
      1000,  // 1000 = 7 * 142 + 6
      rng,
      [](std::uint32_t, std::uint64_t shard_samples, math::Rng&) {
        return shard_samples;
      },
      [](std::uint64_t& acc, std::uint64_t part) { acc += part; });
  EXPECT_EQ(total, 1000u);
}

TEST(Estimator, ReducesInShardOrder) {
  Estimator engine({4, 16});
  math::Rng rng(2);
  const auto order = engine.run_trials<std::vector<std::uint32_t>>(
      16, rng,
      [](std::uint32_t shard, std::uint64_t, math::Rng&) {
        return std::vector<std::uint32_t>{shard};
      },
      [](std::vector<std::uint32_t>& acc, std::vector<std::uint32_t> part) {
        acc.insert(acc.end(), part.begin(), part.end());
      });
  ASSERT_EQ(order.size(), 16u);
  for (std::uint32_t i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(Estimator, AdvancesCallerRngOnce) {
  // The engine consumes exactly one fork() from the caller's generator, so
  // back-to-back estimates stay independent and the caller's stream stays
  // predictable.
  Estimator engine({1});
  const RandomSubsetSystem sys(64, 8);
  math::Rng rng(77), reference(77);
  (void)estimate_nonintersection(sys, 1000, rng, engine);
  reference.fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next(), reference.next());
}

// The acceptance criterion: estimate_nonintersection and
// estimate_failure_probability return bit-identical Proportions for a
// fixed seed at any thread count.
TEST(Estimator, ThreadCountDoesNotChangeNonintersection) {
  const RandomSubsetSystem sys(64, 8);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> results;
  for (unsigned threads : {1u, 4u, 8u}) {
    Estimator engine({threads});
    math::Rng rng(424242);
    const auto est = estimate_nonintersection(sys, 50000, rng, engine);
    results.emplace_back(est.successes(), est.trials());
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(Estimator, ThreadCountDoesNotChangeFailureProbability) {
  const RandomSubsetSystem sys(60, 15);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> results;
  for (unsigned threads : {1u, 4u, 8u}) {
    Estimator engine({threads});
    math::Rng rng(31337);
    const auto est = estimate_failure_probability(sys, 0.7, 30000, rng, engine);
    results.emplace_back(est.successes(), est.trials());
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(Estimator, ThreadCountDoesNotChangeServerLoads) {
  const RandomSubsetSystem sys(50, 10);
  std::vector<std::vector<double>> results;
  for (unsigned threads : {1u, 4u, 8u}) {
    Estimator engine({threads});
    math::Rng rng(55);
    results.push_back(estimate_server_loads(sys, 20000, rng, engine));
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(Estimator, RejectsZeroShards) {
  EXPECT_THROW(Estimator({1, 0}), std::invalid_argument);
}

}  // namespace
}  // namespace pqs::core

#include "core/random_subset_system.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/epsilon.h"
#include "math/rng.h"
#include "math/sampling.h"
#include "quorum/measures.h"

namespace pqs::core {
namespace {

TEST(RandomSubsetSystem, BasicProperties) {
  const RandomSubsetSystem sys(100, 22);
  EXPECT_EQ(sys.universe_size(), 100u);
  EXPECT_EQ(sys.min_quorum_size(), 22u);
  EXPECT_EQ(sys.quorum_size(), 22u);
  EXPECT_DOUBLE_EQ(sys.load(), 0.22);
  EXPECT_EQ(sys.fault_tolerance(), 79u);  // n - q + 1, Table 2 row n=100
  EXPECT_NEAR(sys.ell(), 2.2, 1e-12);
  EXPECT_EQ(sys.regime(), Regime::kIntersecting);
}

TEST(RandomSubsetSystem, SampleIsUniformQSubset) {
  const RandomSubsetSystem sys(30, 7);
  math::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const auto q = sys.sample(rng);
    EXPECT_EQ(q.size(), 7u);
    EXPECT_TRUE(std::is_sorted(q.begin(), q.end()));
    EXPECT_LT(q.back(), 30u);
  }
}

TEST(RandomSubsetSystem, EpsilonMatchesExactFormula) {
  const RandomSubsetSystem sys(100, 22);
  EXPECT_DOUBLE_EQ(sys.epsilon(), nonintersection_exact(100, 22));
  EXPECT_DOUBLE_EQ(sys.epsilon_bound(), nonintersection_bound(100, 22));
  EXPECT_LE(sys.epsilon(), sys.epsilon_bound());
}

TEST(RandomSubsetSystem, IntersectingFactorySolvesTarget) {
  const auto sys = RandomSubsetSystem::intersecting(100, 1e-3);
  EXPECT_LE(sys.epsilon(), 1e-3);
  const RandomSubsetSystem smaller(100, sys.quorum_size() - 1);
  EXPECT_GT(smaller.epsilon(), 1e-3);
}

TEST(RandomSubsetSystem, DisseminationFactory) {
  const auto sys = RandomSubsetSystem::dissemination(100, 4, 1e-3);
  EXPECT_EQ(sys.regime(), Regime::kDissemination);
  EXPECT_EQ(sys.byzantine_threshold(), 4u);
  EXPECT_EQ(sys.quorum_size(), 24u);  // Table 3: l=2.40 at n=100
  EXPECT_LE(sys.epsilon(), 1e-3);
  EXPECT_GT(sys.fault_tolerance(), 4u);
}

TEST(RandomSubsetSystem, MaskingFactory) {
  const auto sys = RandomSubsetSystem::masking(100, 4, 1e-3);
  EXPECT_EQ(sys.regime(), Regime::kMasking);
  // Our exact joint computation with k = ceil(q^2/2n) needs q=40; the
  // paper's Table 4 prints 38 under its (unrecoverable) convention — see
  // EXPERIMENTS.md.
  EXPECT_EQ(sys.quorum_size(), 40u);
  EXPECT_EQ(sys.read_threshold(), 8u);  // ceil(40^2/200)
  EXPECT_LE(sys.epsilon(), 1e-3);
}

TEST(RandomSubsetSystem, DisseminationBeyondStrictResilience) {
  // The paper's headline: resilience up to any constant fraction, far past
  // the strict bound b <= (n-1)/3. Here b = n/2.
  const auto sys =
      RandomSubsetSystem::with_byzantine(900, 240, 450, Regime::kDissemination);
  EXPECT_GT(sys.fault_tolerance(), 450u);
  EXPECT_LT(sys.epsilon(), 1e-3);
  // And load stays O(1/sqrt(n)) * l: far below the 2/3 strict floor.
  EXPECT_LT(sys.load(), 2.0 / 3.0);
}

TEST(RandomSubsetSystem, MaskingBeatsStrictLoadExample) {
  // Section 1.3 / 5.5: b = sqrt(n), l = n^{1/5} gives load O(n^{-0.3}),
  // beating the strict masking bound Omega(n^{-0.25}). Check the concrete
  // claim at n = 10^4: load = q/n with q = l*b = n^{0.7}.
  const std::uint32_t n = 10000;
  const std::uint32_t b = 100;       // sqrt(n)
  const std::uint32_t q = 631;       // ~ n^{0.7}
  const auto sys = RandomSubsetSystem::with_byzantine(n, q, b, Regime::kMasking);
  const double strict_floor = std::sqrt((2.0 * b + 1.0) / n);  // ~0.1418
  EXPECT_LT(sys.load(), strict_floor);
  EXPECT_LT(sys.epsilon(), 1e-3);
}

TEST(RandomSubsetSystem, AvailabilityConstraintEnforced) {
  // q too large for the Byzantine threshold: A = n - q + 1 must exceed b.
  EXPECT_THROW(
      RandomSubsetSystem::with_byzantine(100, 61, 40, Regime::kDissemination),
      std::invalid_argument);
  EXPECT_NO_THROW(
      RandomSubsetSystem::with_byzantine(100, 60, 40, Regime::kDissemination));
}

TEST(RandomSubsetSystem, FailureProbabilityIsBinomialTail) {
  const RandomSubsetSystem sys(100, 22);
  for (double p : {0.1, 0.5, 0.9}) {
    EXPECT_DOUBLE_EQ(sys.failure_probability(p),
                     quorum::size_based_failure_probability(100, 22, p));
  }
  // Still tiny at p well above 1/2 — the paper's headline availability.
  EXPECT_LT(sys.failure_probability(0.6), 1e-3);
}

TEST(RandomSubsetSystem, FailureProbabilityBeatsStrictBoundAboveHalf) {
  // For 1/2 <= p <= 1 - l/sqrt(n), F_p < p (any strict system has >= p).
  const auto sys = RandomSubsetSystem::intersecting(400, 1e-3);
  for (double p : {0.5, 0.6, 0.7, 0.8}) {
    EXPECT_LT(sys.failure_probability(p), p) << "p=" << p;
  }
}

TEST(RandomSubsetSystem, HasLiveQuorumThresholdSemantics) {
  const RandomSubsetSystem sys(5, 3);
  EXPECT_TRUE(sys.has_live_quorum({true, false, true, false, true}));
  EXPECT_FALSE(sys.has_live_quorum({true, false, false, false, true}));
}

TEST(RandomSubsetSystem, NameDescribesConfiguration) {
  EXPECT_EQ(RandomSubsetSystem(100, 22).name(), "R(n=100,q=22)[intersecting]");
  const auto d =
      RandomSubsetSystem::with_byzantine(100, 24, 4, Regime::kDissemination);
  EXPECT_EQ(d.name(), "R(n=100,q=24,b=4)[dissemination]");
  const auto m =
      RandomSubsetSystem::with_byzantine(100, 38, 4, Regime::kMasking);
  EXPECT_EQ(m.name(), "R(n=100,q=38,b=4,k=8)[masking]");
}

// Property sweep over Table 2's system sizes: fault tolerance Theta(n) and
// load Theta(1/sqrt(n)) simultaneously — the paper's central trade-off win.
class Table2Sweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(Table2Sweep, OptimalLoadAndLinearFaultTolerance) {
  const std::uint32_t n = GetParam();
  const auto sys = RandomSubsetSystem::intersecting(n, 1e-3);
  // Fault tolerance is a constant fraction of n (>= 60% for these sizes).
  EXPECT_GE(sys.fault_tolerance(), n * 3 / 5);
  // Load is within a small multiple of the 1/sqrt(n) optimum.
  EXPECT_LE(sys.load(), 3.0 / std::sqrt(static_cast<double>(n)));
  // Strictly better failure probability than any strict system at p = 0.55.
  EXPECT_LT(sys.failure_probability(0.55), 0.55);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Table2Sweep,
                         ::testing::Values(100u, 225u, 400u, 625u, 900u));

}  // namespace
}  // namespace pqs::core

#include "quorum/threshold.h"

#include <cmath>

#include <gtest/gtest.h>

#include "math/rng.h"
#include "math/sampling.h"
#include "quorum/measures.h"

namespace pqs::quorum {
namespace {

TEST(Threshold, MajoritySizes) {
  EXPECT_EQ(ThresholdSystem::majority(5).min_quorum_size(), 3u);
  EXPECT_EQ(ThresholdSystem::majority(6).min_quorum_size(), 4u);  // ceil(7/2)
  EXPECT_EQ(ThresholdSystem::majority(100).min_quorum_size(), 51u);
  EXPECT_EQ(ThresholdSystem::majority(25).min_quorum_size(), 13u);  // Table 2
  EXPECT_EQ(ThresholdSystem::majority(900).min_quorum_size(), 451u);
}

TEST(Threshold, RejectsNonIntersecting) {
  EXPECT_THROW(ThresholdSystem(10, 5), std::invalid_argument);  // 2q = n
  EXPECT_THROW(ThresholdSystem(10, 0), std::invalid_argument);
  EXPECT_THROW(ThresholdSystem(10, 11), std::invalid_argument);
  EXPECT_NO_THROW(ThresholdSystem(10, 6));
}

TEST(Threshold, DisseminationSizesMatchTable3) {
  // Quorum size ceil((n+b+1)/2) for the (n, b) rows of Table 3.
  struct Row { std::uint32_t n, b, size, ft; };
  for (auto [n, b, size, ft] : {Row{25, 2, 14, 12}, Row{100, 4, 53, 48},
                                Row{400, 9, 205, 196}, Row{625, 12, 319, 307},
                                Row{900, 14, 458, 443}}) {
    const auto sys = ThresholdSystem::dissemination(n, b);
    EXPECT_EQ(sys.min_quorum_size(), size) << "n=" << n;
    EXPECT_EQ(sys.fault_tolerance(), ft) << "n=" << n;
    EXPECT_GE(sys.min_pairwise_intersection(), b + 1);
  }
}

TEST(Threshold, MaskingSizesMatchTable4) {
  struct Row { std::uint32_t n, b, size, ft; };
  for (auto [n, b, size, ft] : {Row{25, 2, 15, 11}, Row{100, 4, 55, 46},
                                Row{225, 7, 120, 106}, Row{400, 9, 210, 191},
                                Row{625, 12, 325, 301}, Row{900, 14, 465, 436}}) {
    const auto sys = ThresholdSystem::masking(n, b);
    EXPECT_EQ(sys.min_quorum_size(), size) << "n=" << n;
    EXPECT_EQ(sys.fault_tolerance(), ft) << "n=" << n;
    EXPECT_GE(sys.min_pairwise_intersection(), 2 * b + 1);
  }
}

TEST(Threshold, ResilienceCapsEnforced) {
  EXPECT_THROW(ThresholdSystem::dissemination(10, 4), std::invalid_argument);
  EXPECT_NO_THROW(ThresholdSystem::dissemination(10, 3));
  EXPECT_THROW(ThresholdSystem::masking(17, 5), std::invalid_argument);
  EXPECT_NO_THROW(ThresholdSystem::masking(17, 4));
}

TEST(Threshold, SampleRespectsSizeAndUniverse) {
  const auto sys = ThresholdSystem::majority(31);
  math::Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const auto q = sys.sample(rng);
    EXPECT_EQ(q.size(), sys.min_quorum_size());
    EXPECT_TRUE(std::is_sorted(q.begin(), q.end()));
    EXPECT_LT(q.back(), 31u);
  }
}

TEST(Threshold, SampledPairsAlwaysIntersect) {
  // Strictness check by sampling: 2q > n forces intersection.
  const auto sys = ThresholdSystem::majority(20);
  math::Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const auto a = sys.sample(rng);
    const auto b = sys.sample(rng);
    ASSERT_TRUE(math::sorted_intersects(a, b));
  }
}

TEST(Threshold, DisseminationOverlapObserved) {
  const auto sys = ThresholdSystem::dissemination(30, 5);
  math::Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const auto a = sys.sample(rng);
    const auto b = sys.sample(rng);
    ASSERT_GE(math::sorted_intersection_size(a, b), 6u);
  }
}

TEST(Threshold, LoadIsQOverN) {
  const auto sys = ThresholdSystem::majority(100);
  EXPECT_DOUBLE_EQ(sys.load(), 0.51);
}

TEST(Threshold, FaultToleranceIdentity) {
  for (std::uint32_t n : {11u, 25u, 100u}) {
    const auto sys = ThresholdSystem::majority(n);
    EXPECT_EQ(sys.fault_tolerance(), n - sys.min_quorum_size() + 1);
  }
}

TEST(Threshold, FailureProbabilityHalfAtHalfOdd) {
  // For odd n and p = 1/2 the majority system fails w.p. exactly
  // P(Bin(n,1/2) > n - ceil((n+1)/2)) = P(Bin > floor(n/2)) = 1/2.
  const auto sys = ThresholdSystem::majority(25);
  EXPECT_NEAR(sys.failure_probability(0.5), 0.5, 1e-12);
}

TEST(Threshold, FailureProbabilityMonotoneInP) {
  const auto sys = ThresholdSystem::majority(49);
  double prev = -1.0;
  for (double p = 0.0; p <= 1.0; p += 0.05) {
    const double f = sys.failure_probability(p);
    EXPECT_GE(f + 1e-12, prev);
    prev = f;
  }
  EXPECT_NEAR(sys.failure_probability(0.0), 0.0, 1e-12);
  EXPECT_NEAR(sys.failure_probability(1.0), 1.0, 1e-12);
}

TEST(Threshold, HasLiveQuorumCountsAlive) {
  const auto sys = ThresholdSystem(5, 3);
  EXPECT_TRUE(sys.has_live_quorum({true, true, true, false, false}));
  EXPECT_FALSE(sys.has_live_quorum({true, true, false, false, false}));
}

// Parameterized: the load lower bound max(1/c, c/n) from [NW98] is met with
// equality at c = majority size only asymptotically; but L >= 1/sqrt(n)
// always.
class ThresholdLoadBound : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ThresholdLoadBound, NaorWoolFloor) {
  const std::uint32_t n = GetParam();
  const auto sys = ThresholdSystem::majority(n);
  EXPECT_GE(sys.load() + 1e-12, 1.0 / std::sqrt(static_cast<double>(n)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ThresholdLoadBound,
                         ::testing::Values(4u, 9u, 25u, 100u, 225u, 400u,
                                           625u, 900u));

}  // namespace
}  // namespace pqs::quorum

#include "math/binomial.h"

#include <cmath>

#include <gtest/gtest.h>

#include "math/combinatorics.h"

namespace pqs::math {
namespace {

TEST(BinomialPmf, SumsToOne) {
  for (double p : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    for (std::int64_t n : {1, 5, 17, 64}) {
      double total = 0.0;
      for (std::int64_t k = 0; k <= n; ++k) total += binomial_pmf(n, p, k);
      EXPECT_NEAR(total, 1.0, 1e-10) << "n=" << n << " p=" << p;
    }
  }
}

TEST(BinomialPmf, DegenerateP) {
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 0.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 0.0, 1), 0.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 1.0, 10), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 1.0, 9), 0.0);
}

TEST(BinomialPmf, MatchesClosedFormSmall) {
  // n=4, p=0.3: pmf(2) = C(4,2) 0.09 * 0.49 = 6*0.0441 = 0.2646
  EXPECT_NEAR(binomial_pmf(4, 0.3, 2), 0.2646, 1e-12);
}

TEST(BinomialPmf, OutOfSupport) {
  EXPECT_DOUBLE_EQ(binomial_pmf(4, 0.3, -1), 0.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(4, 0.3, 5), 0.0);
}

TEST(BinomialTail, ComplementIdentity) {
  for (std::int64_t n : {7, 20, 33}) {
    for (double p : {0.2, 0.5, 0.77}) {
      for (std::int64_t k = 0; k <= n + 1; ++k) {
        const double upper = binomial_upper_tail(n, p, k);
        const double lower = binomial_lower_tail(n, p, k - 1);
        EXPECT_NEAR(upper + lower, 1.0, 1e-10)
            << "n=" << n << " p=" << p << " k=" << k;
      }
    }
  }
}

TEST(BinomialTail, Extremes) {
  EXPECT_DOUBLE_EQ(binomial_upper_tail(10, 0.4, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_upper_tail(10, 0.4, -3), 1.0);
  EXPECT_DOUBLE_EQ(binomial_upper_tail(10, 0.4, 11), 0.0);
  EXPECT_DOUBLE_EQ(binomial_lower_tail(10, 0.4, 10), 1.0);
  EXPECT_DOUBLE_EQ(binomial_lower_tail(10, 0.4, -1), 0.0);
}

TEST(BinomialTail, MonotoneInK) {
  for (std::int64_t k = 0; k <= 30; ++k) {
    EXPECT_GE(binomial_upper_tail(30, 0.5, k),
              binomial_upper_tail(30, 0.5, k + 1));
  }
}

TEST(BinomialTail, MonotoneInP) {
  // P(Bin >= k) grows with p.
  double prev = 0.0;
  for (double p = 0.0; p <= 1.0; p += 0.05) {
    const double cur = binomial_upper_tail(40, p, 25);
    EXPECT_GE(cur + 1e-12, prev);
    prev = cur;
  }
}

TEST(BinomialTail, TinyTailAccuracy) {
  // P(Bin(100, 0.01) >= 50) is astronomically small but must be positive
  // and far below 1e-30; a naive 1-sum implementation would return 0 or
  // negative noise.
  const double t = binomial_upper_tail(100, 0.01, 50);
  EXPECT_GT(t, 0.0);
  EXPECT_LT(t, 1e-50);
}

TEST(BinomialTail, MatchesBruteForce) {
  const std::int64_t n = 23;
  const double p = 0.37;
  for (std::int64_t k = 0; k <= n; ++k) {
    double expected = 0.0;
    for (std::int64_t i = k; i <= n; ++i) expected += binomial_pmf(n, p, i);
    EXPECT_NEAR(binomial_upper_tail(n, p, k), expected, 1e-10);
  }
}

TEST(BinomialMoments, Formulas) {
  EXPECT_DOUBLE_EQ(binomial_mean(40, 0.25), 10.0);
  EXPECT_DOUBLE_EQ(binomial_variance(40, 0.25), 7.5);
}

}  // namespace
}  // namespace pqs::math

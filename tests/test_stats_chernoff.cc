#include <cmath>

#include <gtest/gtest.h>

#include "math/binomial.h"
#include "math/chernoff.h"
#include "math/rng.h"
#include "math/stats.h"

namespace pqs::math {
namespace {

TEST(OnlineStats, MeanVarianceKnownData) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, SingleSample) {
  OnlineStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.std_error(), 0.0);
}

TEST(OnlineStats, Empty) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.std_error(), 0.0);
}

TEST(Proportion, EstimateAndCounts) {
  Proportion p;
  p.add(true);
  p.add(false);
  p.add(true);
  p.add(true);
  EXPECT_EQ(p.trials(), 4u);
  EXPECT_EQ(p.successes(), 3u);
  EXPECT_DOUBLE_EQ(p.estimate(), 0.75);
}

TEST(Proportion, BulkAdd) {
  Proportion p;
  p.add(30, 100);
  EXPECT_DOUBLE_EQ(p.estimate(), 0.3);
  EXPECT_THROW(p.add(5, 4), std::invalid_argument);
}

TEST(Proportion, WilsonCoversTruth) {
  // Simulate Bernoulli(0.2); the 3.89-sigma Wilson interval should contain
  // 0.2 essentially always.
  Rng rng(61);
  Proportion p;
  for (int i = 0; i < 50000; ++i) p.add(rng.chance(0.2));
  const auto ci = p.wilson(3.89);
  EXPECT_TRUE(ci.contains(0.2)) << "[" << ci.lo << "," << ci.hi << "]";
  EXPECT_LT(ci.hi - ci.lo, 0.03);
}

TEST(Proportion, WilsonDegenerate) {
  Proportion p;
  const auto ci = p.wilson(2.0);
  EXPECT_DOUBLE_EQ(ci.lo, 0.0);
  EXPECT_DOUBLE_EQ(ci.hi, 1.0);
  Proportion zero;
  zero.add(0, 100);
  const auto ci0 = zero.wilson(3.0);
  EXPECT_DOUBLE_EQ(ci0.lo, 0.0);
  EXPECT_GT(ci0.hi, 0.0);
  EXPECT_LT(ci0.hi, 0.2);
}

TEST(Chernoff, UpperBoundsBinomialTail) {
  // The bound must dominate the exact binomial tail it bounds.
  const std::int64_t n = 200;
  const double p = 0.1;
  const double mu = n * p;
  for (double gamma : {0.5, 1.0, 2.0, 5.0}) {
    const auto k = static_cast<std::int64_t>(std::ceil((1.0 + gamma) * mu));
    const double exact = binomial_upper_tail(n, p, k + 1);  // P(X > (1+g)mu)
    EXPECT_LE(exact, chernoff_upper(mu, gamma) + 1e-12) << "gamma=" << gamma;
  }
}

TEST(Chernoff, LowerBoundsBinomialTail) {
  const std::int64_t n = 200;
  const double p = 0.4;
  const double mu = n * p;
  for (double delta : {0.2, 0.5, 0.8}) {
    const auto k =
        static_cast<std::int64_t>(std::floor((1.0 - delta) * mu));
    const double exact = binomial_lower_tail(n, p, k - 1);  // P(X < (1-d)mu)
    EXPECT_LE(exact, chernoff_lower(mu, delta) + 1e-12) << "delta=" << delta;
  }
}

TEST(Chernoff, CappedAtOne) {
  EXPECT_LE(chernoff_upper(0.001, 0.001), 1.0);
  EXPECT_LE(chernoff_lower(0.001, 0.001), 1.0);
}

TEST(FailureProbabilityBound, DominatesExactTail) {
  // e^{-2n(1 - q/n - p)^2} >= P(#fail > n - q) whenever p < 1 - q/n.
  for (std::int64_t n : {100, 300, 900}) {
    const std::int64_t q = static_cast<std::int64_t>(2.5 * std::sqrt(double(n)));
    for (double p = 0.05; p < 1.0 - double(q) / n; p += 0.1) {
      const double exact = binomial_upper_tail(n, p, n - q + 1);
      EXPECT_LE(exact, failure_probability_bound(n, q, p) + 1e-12)
          << "n=" << n << " p=" << p;
    }
  }
}

TEST(FailureProbabilityBound, OneOutsideValidity) {
  EXPECT_DOUBLE_EQ(failure_probability_bound(100, 30, 0.8), 1.0);
}

}  // namespace
}  // namespace pqs::math

#include "math/hypergeometric.h"

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "math/combinatorics.h"

namespace pqs::math {
namespace {

TEST(Hypergeometric, SupportBounds) {
  const auto h = make_hypergeometric(20, 6, 9);
  EXPECT_EQ(h.support_min(), 0);
  EXPECT_EQ(h.support_max(), 6);
  const auto tight = make_hypergeometric(10, 8, 7);
  EXPECT_EQ(tight.support_min(), 5);  // 7 + 8 - 10
  EXPECT_EQ(tight.support_max(), 7);
}

TEST(Hypergeometric, PmfSumsToOne) {
  for (auto [n, K, q] : {std::tuple{10, 3, 4}, std::tuple{25, 9, 9},
                         std::tuple{100, 22, 22}, std::tuple{50, 49, 30}}) {
    const auto h = make_hypergeometric(n, K, q);
    double total = 0.0;
    for (auto x = h.support_min(); x <= h.support_max(); ++x) {
      total += h.pmf(x);
    }
    EXPECT_NEAR(total, 1.0, 1e-10) << "n=" << n << " K=" << K << " q=" << q;
  }
}

TEST(Hypergeometric, PmfMatchesExactCounting) {
  // H(3; 10, 4): P(X=x) = C(3,x) C(7,4-x) / C(10,4).
  const auto h = make_hypergeometric(10, 3, 4);
  const double denom = static_cast<double>(choose_exact(10, 4));
  for (std::int64_t x = 0; x <= 3; ++x) {
    const double expected = static_cast<double>(choose_exact(3, x)) *
                            static_cast<double>(choose_exact(7, 4 - x)) /
                            denom;
    EXPECT_NEAR(h.pmf(x), expected, 1e-12);
  }
}

TEST(Hypergeometric, OutOfSupportIsZero) {
  const auto h = make_hypergeometric(10, 3, 4);
  EXPECT_DOUBLE_EQ(h.pmf(-1), 0.0);
  EXPECT_DOUBLE_EQ(h.pmf(4), 0.0);
}

TEST(Hypergeometric, MeanFormula) {
  const auto h = make_hypergeometric(100, 22, 22);
  // E[X] = q K / n (Eq. 13 of the paper with K = b).
  EXPECT_NEAR(h.mean(), 22.0 * 22.0 / 100.0, 1e-12);
}

TEST(Hypergeometric, MeanMatchesPmfWeightedSum) {
  const auto h = make_hypergeometric(60, 17, 24);
  double mean = 0.0;
  for (auto x = h.support_min(); x <= h.support_max(); ++x) {
    mean += static_cast<double>(x) * h.pmf(x);
  }
  EXPECT_NEAR(mean, h.mean(), 1e-10);
}

TEST(Hypergeometric, VarianceMatchesPmfWeightedSum) {
  const auto h = make_hypergeometric(60, 17, 24);
  double mean = 0.0;
  double second = 0.0;
  for (auto x = h.support_min(); x <= h.support_max(); ++x) {
    mean += static_cast<double>(x) * h.pmf(x);
    second += static_cast<double>(x) * static_cast<double>(x) * h.pmf(x);
  }
  EXPECT_NEAR(h.variance(), second - mean * mean, 1e-8);
}

TEST(Hypergeometric, VarianceBelowBinomial) {
  // Sampling without replacement concentrates: V[X] < V[X_binomial]
  // (the paper's remark after Proposition 5.8).
  const auto h = make_hypergeometric(100, 30, 40);
  const double binom_var = 40.0 * 0.3 * 0.7;
  EXPECT_LT(h.variance(), binom_var);
}

TEST(Hypergeometric, CdfAndTailComplement) {
  const auto h = make_hypergeometric(40, 13, 19);
  for (auto x = h.support_min() - 1; x <= h.support_max() + 1; ++x) {
    EXPECT_NEAR(h.cdf(x) + h.upper_tail(x + 1), 1.0, 1e-10) << "x=" << x;
  }
}

TEST(Hypergeometric, TailMatchesBruteForce) {
  const auto h = make_hypergeometric(40, 13, 19);
  for (auto x = h.support_min(); x <= h.support_max(); ++x) {
    double expected = 0.0;
    for (auto i = x; i <= h.support_max(); ++i) expected += h.pmf(i);
    EXPECT_NEAR(h.upper_tail(x), expected, 1e-10);
  }
}

TEST(Hypergeometric, TailExtremes) {
  const auto h = make_hypergeometric(40, 13, 19);
  EXPECT_DOUBLE_EQ(h.upper_tail(h.support_min()), 1.0);
  EXPECT_DOUBLE_EQ(h.upper_tail(h.support_max() + 1), 0.0);
  EXPECT_DOUBLE_EQ(h.cdf(h.support_max()), 1.0);
}

TEST(Hypergeometric, InvalidParamsThrow) {
  EXPECT_THROW(make_hypergeometric(10, 11, 5), std::invalid_argument);
  EXPECT_THROW(make_hypergeometric(10, 5, 11), std::invalid_argument);
  EXPECT_THROW(make_hypergeometric(10, -1, 5), std::invalid_argument);
}

// Property sweep: symmetry H(K; n, q)(x) == H(q; n, K)(x).
class HypergeometricSymmetry
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(HypergeometricSymmetry, DrawsAndSuccessesInterchange) {
  const auto [n, K, q] = GetParam();
  const auto a = make_hypergeometric(n, K, q);
  const auto b = make_hypergeometric(n, q, K);
  for (auto x = a.support_min(); x <= a.support_max(); ++x) {
    EXPECT_NEAR(a.pmf(x), b.pmf(x), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HypergeometricSymmetry,
    ::testing::Values(std::tuple{12, 4, 7}, std::tuple{30, 11, 6},
                      std::tuple{64, 20, 33}, std::tuple{100, 50, 50},
                      std::tuple{225, 36, 36}));

}  // namespace
}  // namespace pqs::math

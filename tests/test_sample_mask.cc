// The mask-native draw path must be indistinguishable (same member sets,
// same rng consumption) from the sorted-vector path for every
// construction, and the word-parallel liveness checks must agree with the
// vector<bool> reference on every alive mask — including inside the
// batched-Bernoulli failure-probability estimator, bit for bit, at any
// thread count.
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/estimator.h"
#include "core/monte_carlo.h"
#include "core/random_subset_system.h"
#include "math/bernoulli.h"
#include "math/rng.h"
#include "quorum/bitset.h"
#include "quorum/grid.h"
#include "quorum/set_system.h"
#include "quorum/singleton.h"
#include "quorum/threshold.h"
#include "quorum/wall.h"
#include "quorum/weighted.h"

namespace pqs {
namespace {

using quorum::Quorum;
using quorum::QuorumBitset;
using quorum::QuorumSystem;

using SystemFactory = std::shared_ptr<const QuorumSystem> (*)();

std::shared_ptr<const QuorumSystem> make_threshold() {
  return std::make_shared<quorum::ThresholdSystem>(
      quorum::ThresholdSystem::majority(67));
}
std::shared_ptr<const QuorumSystem> make_grid() {
  // 7x7, d=2: spans word boundaries neither at 64 nor 128.
  return std::make_shared<quorum::GridSystem>(quorum::GridSystem(7, 7, 2));
}
std::shared_ptr<const QuorumSystem> make_big_grid() {
  // 12x12 = 144 servers: rows straddle the 64- and 128-bit word seams.
  return std::make_shared<quorum::GridSystem>(quorum::GridSystem(12, 12, 1));
}
std::shared_ptr<const QuorumSystem> make_wall() {
  return std::make_shared<quorum::WallSystem>(
      quorum::WallSystem({40, 30, 20, 10}));  // 100 servers, crosses a word
}
std::shared_ptr<const QuorumSystem> make_weighted() {
  std::vector<std::uint32_t> votes(70, 1);
  for (int i = 0; i < 10; ++i) votes[i] = 5;
  return std::make_shared<quorum::WeightedVotingSystem>(
      quorum::WeightedVotingSystem(votes, 61));
}
std::shared_ptr<const QuorumSystem> make_singleton() {
  return std::make_shared<quorum::SingletonSystem>(66, 65);
}
std::shared_ptr<const QuorumSystem> make_set_system() {
  return std::make_shared<quorum::SetSystem>(
      quorum::SetSystem::all_subsets(7, 4));
}
std::shared_ptr<const QuorumSystem> make_random_subset() {
  return std::make_shared<core::RandomSubsetSystem>(130, 27);
}

class MaskPathEquivalence : public ::testing::TestWithParam<SystemFactory> {};

// sample_mask must mark exactly the members sample_into emits, drawing the
// same rng values — checked in lockstep over many draws so any stream
// divergence compounds and fails fast.
TEST_P(MaskPathEquivalence, MaskAndVectorDrawsAgree) {
  const auto sys = GetParam()();
  for (std::uint64_t seed : {1ull, 42ull, 0xfeedfaceull}) {
    math::Rng rng_vec(seed), rng_mask(seed);
    Quorum q, from_mask;
    QuorumBitset mask;
    for (int draw = 0; draw < 200; ++draw) {
      sys->sample_into(q, rng_vec);
      sys->sample_mask(mask, rng_mask);
      ASSERT_EQ(mask.universe_size(), sys->universe_size());
      mask.to_quorum_into(from_mask);
      ASSERT_EQ(from_mask, q) << sys->name() << " seed " << seed << " draw "
                              << draw;
    }
    // The two streams must end in the same state.
    EXPECT_EQ(rng_vec.next(), rng_mask.next()) << sys->name();
  }
}

// sample() must still agree with the mask path too (it is documented as
// the same draw at a different representation).
TEST_P(MaskPathEquivalence, AllocatingSampleAgrees) {
  const auto sys = GetParam()();
  math::Rng rng_a(7), rng_b(7);
  QuorumBitset mask;
  for (int draw = 0; draw < 50; ++draw) {
    const Quorum expected = sys->sample(rng_a);
    sys->sample_mask(mask, rng_b);
    ASSERT_EQ(mask.to_quorum(), expected) << sys->name();
  }
}

TEST_P(MaskPathEquivalence, LivenessChecksAgreeOnRandomMasks) {
  const auto sys = GetParam()();
  const std::uint32_t n = sys->universe_size();
  math::Rng rng(99);
  for (double p : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    const math::BernoulliBlockSampler dead(p);
    for (int trial = 0; trial < 200; ++trial) {
      QuorumBitset alive(n);
      std::uint64_t* words = alive.word_data();
      for (std::size_t i = 0; i < alive.word_count(); ++i) {
        words[i] = ~dead.draw_block(rng);
      }
      alive.mask_padding();
      std::vector<bool> alive_vec(n, false);
      for (std::uint32_t u = 0; u < n; ++u) {
        if (alive.test(u)) alive_vec[u] = true;
      }
      ASSERT_EQ(sys->has_live_quorum_mask(alive),
                sys->has_live_quorum(alive_vec))
          << sys->name() << " p=" << p << " trial=" << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllConstructions, MaskPathEquivalence,
                         ::testing::Values(&make_threshold, &make_grid,
                                           &make_big_grid, &make_wall,
                                           &make_weighted, &make_singleton,
                                           &make_set_system,
                                           &make_random_subset));

// The batched-Bernoulli failure-probability estimator must return
// bit-identical Proportions through the word-parallel liveness path and
// the scalar vector<bool> reference path, at every thread count — both
// paths see the same alive masks, so any disagreement is a bug in a
// construction's has_live_quorum_mask.
TEST(FailureProbabilityPaths, BatchedMatchesScalarBitForBit) {
  const std::vector<std::shared_ptr<const QuorumSystem>> systems = {
      make_threshold(), make_grid(), make_big_grid(), make_wall(),
      make_weighted(), make_set_system(), make_random_subset()};
  for (const auto& sys : systems) {
    for (double p : {0.25, 0.5, 0.61}) {
      std::vector<std::pair<std::uint64_t, std::uint64_t>> results;
      for (unsigned threads : {1u, 2u, 8u}) {
        core::Estimator engine({threads});
        math::Rng rng_fast(4242), rng_ref(4242);
        const auto fast = core::estimate_failure_probability(
            *sys, p, 20000, rng_fast, engine,
            core::LivenessCheck::kWordParallel);
        const auto ref = core::estimate_failure_probability(
            *sys, p, 20000, rng_ref, engine,
            core::LivenessCheck::kScalarReference);
        EXPECT_EQ(fast.successes(), ref.successes())
            << sys->name() << " p=" << p << " threads=" << threads;
        EXPECT_EQ(fast.trials(), ref.trials());
        results.emplace_back(fast.successes(), fast.trials());
      }
      // And thread count changes nothing.
      EXPECT_EQ(results[0], results[1]) << sys->name() << " p=" << p;
      EXPECT_EQ(results[0], results[2]) << sys->name() << " p=" << p;
    }
  }
}

// The block sampler itself: dyadic probabilities resolve in exactly the
// digit count of their binary expansion (p = 1/2 -> one word per 64
// trials), and the marginal success rate is p for dyadic and non-dyadic
// probabilities alike.
TEST(BernoulliBlock, HalfUsesExactlyOneWordPerBlock) {
  const math::BernoulliBlockSampler sampler(0.5);
  math::Rng rng(31), mirror(31);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t block = sampler.draw_block(rng);
    // Digit 1 at the top level: success exactly where the word bit is 0.
    EXPECT_EQ(block, ~mirror.next());
  }
  // Streams in lockstep: exactly one word consumed per block.
  EXPECT_EQ(rng.next(), mirror.next());
}

TEST(BernoulliBlock, MarginalRateMatchesP) {
  math::Rng rng(37);
  for (double p : {0.5, 0.25, 0.3, 0.875, 1e-3, 0.999}) {
    const math::BernoulliBlockSampler sampler(p);
    std::uint64_t successes = 0;
    constexpr int kBlocks = 20000;  // 1.28M trials
    for (int i = 0; i < kBlocks; ++i) {
      successes += quorum::popcount64(sampler.draw_block(rng));
    }
    const double rate = static_cast<double>(successes) / (64.0 * kBlocks);
    // ~4.4 sigma of binomial noise.
    const double sigma = std::sqrt(p * (1 - p) / (64.0 * kBlocks));
    EXPECT_NEAR(rate, p, 4.4 * sigma + 1e-12) << "p=" << p;
  }
}

TEST(BernoulliBlock, ExtremesAreConstant) {
  math::Rng rng(41);
  const math::BernoulliBlockSampler never(0.0);
  const math::BernoulliBlockSampler always(1.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(never.draw_block(rng), 0u);
    EXPECT_EQ(always.draw_block(rng), ~0ULL);
  }
}

}  // namespace
}  // namespace pqs

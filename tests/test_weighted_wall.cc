#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/monte_carlo.h"
#include "math/rng.h"
#include "math/sampling.h"
#include "quorum/threshold.h"
#include "quorum/wall.h"
#include "quorum/weighted.h"

namespace pqs::quorum {
namespace {

// ---- Weighted voting [Gif79] ------------------------------------------------

TEST(Weighted, MajorityEquivalence) {
  const auto w = WeightedVotingSystem::majority(9);
  const auto t = ThresholdSystem::majority(9);
  EXPECT_EQ(w.min_quorum_size(), t.min_quorum_size());
  EXPECT_EQ(w.fault_tolerance(), t.fault_tolerance());
  for (double p : {0.2, 0.5, 0.8}) {
    EXPECT_NEAR(w.failure_probability(p), t.failure_probability(p), 1e-10);
  }
}

TEST(Weighted, RejectsNonIntersectingThreshold) {
  EXPECT_THROW(WeightedVotingSystem({1, 1, 1, 1}, 2), std::invalid_argument);
  EXPECT_THROW(WeightedVotingSystem({1, 1, 1, 1}, 5), std::invalid_argument);
  EXPECT_THROW(WeightedVotingSystem({1, 0, 1}, 2), std::invalid_argument);
  EXPECT_NO_THROW(WeightedVotingSystem({1, 1, 1, 1}, 3));
}

TEST(Weighted, SampleReachesThresholdMinimally) {
  const WeightedVotingSystem sys({5, 1, 1, 1, 1, 1}, 6);
  math::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const auto q = sys.sample(rng);
    std::uint32_t total = 0;
    for (auto u : q) total += sys.votes()[u];
    EXPECT_GE(total, 6u);
    // Prefix-minimality: dropping the largest-vote member of the sampled
    // permutation prefix must fall below the threshold. We can't recover
    // the permutation, but the total can never exceed T - 1 + max_vote.
    EXPECT_LE(total, 6u - 1 + 5);
  }
}

TEST(Weighted, SampledPairsIntersect) {
  const WeightedVotingSystem sys({3, 2, 2, 1, 1, 1}, 6);  // V=10, T=6
  math::Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const auto a = sys.sample(rng);
    const auto b = sys.sample(rng);
    ASSERT_TRUE(math::sorted_intersects(a, b));
  }
}

TEST(Weighted, MinQuorumGreedy) {
  // V = 12, T = 7: greedy 5+4 = 9 >= 7 with 2 servers.
  const WeightedVotingSystem sys({5, 4, 1, 1, 1}, 7);
  EXPECT_EQ(sys.min_quorum_size(), 2u);
}

TEST(Weighted, FaultToleranceGreedy) {
  // V = 12, T = 7: kill votes >= 12-7+1 = 6: server 0 (5) + server 1 (4)
  // = 2 servers.
  const WeightedVotingSystem sys({5, 4, 1, 1, 1}, 7);
  EXPECT_EQ(sys.fault_tolerance(), 2u);
  // All-unit votes: need n - T + 1 servers.
  const WeightedVotingSystem units({1, 1, 1, 1, 1}, 3);
  EXPECT_EQ(units.fault_tolerance(), 3u);
}

TEST(Weighted, FailureProbabilityMatchesEnumeration) {
  const WeightedVotingSystem sys({3, 2, 2, 1, 1}, 5);  // V=9, T=5
  const double p = 0.35;
  double expected = 0.0;
  for (int mask = 0; mask < 32; ++mask) {
    std::uint32_t votes = 0;
    double prob = 1.0;
    for (int u = 0; u < 5; ++u) {
      if (mask & (1 << u)) {
        votes += sys.votes()[u];
        prob *= 1.0 - p;
      } else {
        prob *= p;
      }
    }
    if (votes < sys.threshold()) expected += prob;
  }
  EXPECT_NEAR(sys.failure_probability(p), expected, 1e-12);
}

TEST(Weighted, FailureProbabilityMatchesMonteCarlo) {
  const WeightedVotingSystem sys({4, 3, 2, 2, 1, 1, 1}, 8);
  math::Rng rng(7);
  const auto est = core::estimate_failure_probability(sys, 0.4, 100000, rng);
  EXPECT_TRUE(est.wilson(4.4).contains(sys.failure_probability(0.4)))
      << est.estimate() << " vs " << sys.failure_probability(0.4);
}

TEST(Weighted, HeavyServerCarriesMoreLoad) {
  const WeightedVotingSystem sys({6, 1, 1, 1, 1, 1, 1}, 7);
  // Server 0 holds 6 of 12 votes: nearly every quorum needs it.
  math::Rng rng(9);
  const auto loads = core::estimate_server_loads(sys, 20000, rng);
  for (std::size_t u = 1; u < loads.size(); ++u) {
    EXPECT_GT(loads[0], loads[u]);
  }
  EXPECT_GT(sys.load(), 0.8);
}

TEST(Weighted, HasLiveQuorumCountsVotes) {
  const WeightedVotingSystem sys({3, 2, 1}, 4);  // V=6, T=4
  EXPECT_TRUE(sys.has_live_quorum({true, true, false}));
  EXPECT_TRUE(sys.has_live_quorum({true, false, true}));
  EXPECT_FALSE(sys.has_live_quorum({false, true, true}));
  EXPECT_FALSE(sys.has_live_quorum({true, false, false}));
}

// ---- Crumbling walls [PW97] ------------------------------------------------

TEST(Wall, StructureAndSizes) {
  const WallSystem wall({4, 3, 2});  // 9 servers, 3 rows
  EXPECT_EQ(wall.universe_size(), 9u);
  EXPECT_EQ(wall.rows(), 3u);
  // Quorum sizes by chosen row: 4+2=6, 3+1=4, 2+0=2 -> c(Q)=2.
  EXPECT_EQ(wall.min_quorum_size(), 2u);
  EXPECT_EQ(wall.fault_tolerance(), 2u);  // min(d=3, c=2)
}

TEST(Wall, SampleShape) {
  const WallSystem wall({4, 3, 2});
  math::Rng rng(11);
  for (int i = 0; i < 300; ++i) {
    const auto q = wall.sample(rng);
    EXPECT_TRUE(std::is_sorted(q.begin(), q.end()));
    // Identify the chosen row: the first row fully contained in q.
    // Row starts: 0, 4, 7.
    const std::vector<ServerId> r0{0, 1, 2, 3};
    const std::vector<ServerId> r1{4, 5, 6};
    const bool row0 = std::includes(q.begin(), q.end(), r0.begin(), r0.end());
    const bool row1 = std::includes(q.begin(), q.end(), r1.begin(), r1.end());
    const bool row2 = q.size() >= 2 && q[q.size() - 2] >= 7;
    if (row0) EXPECT_EQ(q.size(), 6u);
    else if (row1) EXPECT_EQ(q.size(), 4u);
    else EXPECT_EQ(q.size(), 2u);
    EXPECT_TRUE(row0 || row1 || row2);
  }
}

TEST(Wall, SampledPairsIntersect) {
  const WallSystem wall({5, 4, 3, 2});
  math::Rng rng(13);
  for (int i = 0; i < 3000; ++i) {
    const auto a = wall.sample(rng);
    const auto b = wall.sample(rng);
    ASSERT_TRUE(math::sorted_intersects(a, b));
  }
}

TEST(Wall, LoadClosedFormMatchesMonteCarlo) {
  const WallSystem wall({5, 4, 3, 2});
  math::Rng rng(17);
  EXPECT_NEAR(core::estimate_load(wall, 200000, rng), wall.load(), 0.01);
}

TEST(Wall, LoadFormulaValues) {
  // Uniform wall d rows of width w: row i load (1 + i/w)/d; max at bottom.
  const auto wall = WallSystem::uniform(4, 4);
  EXPECT_NEAR(wall.load(), (1.0 + 3.0 / 4.0) / 4.0, 1e-12);
}

TEST(Wall, SingleRowIsMajorityLike) {
  // One row: the only quorum is the full row.
  const WallSystem wall({5});
  EXPECT_EQ(wall.min_quorum_size(), 5u);
  EXPECT_EQ(wall.fault_tolerance(), 1u);
  EXPECT_NEAR(wall.failure_probability(0.2), 1.0 - std::pow(0.8, 5), 1e-12);
}

TEST(Wall, FailureProbabilityMatchesMonteCarlo) {
  const WallSystem wall({4, 3, 3, 2});
  math::Rng rng(19);
  for (double p : {0.2, 0.5, 0.7}) {
    const auto est = core::estimate_failure_probability(wall, p, 100000, rng);
    EXPECT_TRUE(est.wilson(4.4).contains(wall.failure_probability(p)))
        << "p=" << p << " est=" << est.estimate() << " exact="
        << wall.failure_probability(p);
  }
}

TEST(Wall, FailureProbabilityExtremes) {
  const WallSystem wall({3, 2, 2});
  EXPECT_NEAR(wall.failure_probability(0.0), 0.0, 1e-12);
  EXPECT_NEAR(wall.failure_probability(1.0), 1.0, 1e-12);
}

TEST(Wall, HasLiveQuorumLogic) {
  const WallSystem wall({3, 2});
  // Bottom row {3,4} alive alone is a quorum (chosen row = last).
  EXPECT_TRUE(wall.has_live_quorum({false, false, false, true, true}));
  // Top row alive + a survivor below.
  EXPECT_TRUE(wall.has_live_quorum({true, true, true, true, false}));
  // Top row alive but bottom row dead: chosen row 0 needs a rep below.
  EXPECT_FALSE(wall.has_live_quorum({true, true, true, false, false}));
  // Bottom row broken (one dead of two means not fully alive) and top
  // broken: no quorum.
  EXPECT_FALSE(wall.has_live_quorum({true, false, true, true, false}));
}

TEST(Wall, Validation) {
  EXPECT_THROW(WallSystem({}), std::invalid_argument);
  EXPECT_THROW(WallSystem({3, 0, 2}), std::invalid_argument);
}

// Property sweep: strictness and measure consistency across wall shapes.
class WallSweep
    : public ::testing::TestWithParam<std::vector<std::uint32_t>> {};

TEST_P(WallSweep, MeasuresConsistent) {
  const WallSystem wall(GetParam());
  // Load within [1/n, 1], fault tolerance >= 1, failure prob monotone in p.
  EXPECT_GE(wall.load(), 1.0 / wall.universe_size());
  EXPECT_LE(wall.load(), 1.0);
  EXPECT_GE(wall.fault_tolerance(), 1u);
  double prev = -1.0;
  for (double p = 0.0; p <= 1.0; p += 0.1) {
    const double f = wall.failure_probability(p);
    EXPECT_GE(f + 1e-12, prev);
    prev = f;
  }
  // Killing fault_tolerance - 1 arbitrary servers never disables the
  // system's *best-placed* quorum... the defining property is about the
  // minimum over placements, so check: there exists an alive quorum when
  // the adversary kills fault_tolerance - 1 servers greedily from the top
  // row (a reasonable worst-ish case the closed form must survive).
  std::vector<bool> alive(wall.universe_size(), true);
  for (std::uint32_t i = 0; i + 1 < wall.fault_tolerance(); ++i) {
    alive[i] = false;
  }
  EXPECT_TRUE(wall.has_live_quorum(alive));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WallSweep,
    ::testing::Values(std::vector<std::uint32_t>{3},
                      std::vector<std::uint32_t>{3, 2},
                      std::vector<std::uint32_t>{4, 4, 4},
                      std::vector<std::uint32_t>{6, 5, 4, 3},
                      std::vector<std::uint32_t>{2, 2, 2, 2, 2},
                      std::vector<std::uint32_t>{8, 1, 8}));
}  // namespace
}  // namespace pqs::quorum

// stats::LatencyHistogram — the HDR-style log-bucketed recorder.
//
// Contracts: the bucket geometry covers every uint64 with bounded relative
// width; values below the sub-bucket count are recorded exactly;
// percentiles agree with a sorted-vector oracle to within the advertised
// quantization error; the shard merge is lossless (merging split streams
// equals recording one stream); and the reported tail never exceeds the
// exact observed maximum.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "stats/latency_histogram.h"

namespace pqs::stats {
namespace {

// Deterministic value stream spanning many decades: a linear-congruential
// step picks the magnitude (0..2^47) so buckets from the exact region up
// through dozens of powers of two all get traffic.
std::vector<std::uint64_t> sample_stream(std::size_t count) {
  std::vector<std::uint64_t> values;
  values.reserve(count);
  std::uint64_t x = 0x2545f4914f6cdd1dULL;
  for (std::size_t i = 0; i < count; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::uint32_t shift = static_cast<std::uint32_t>((x >> 58));  // 0..63
    values.push_back((x >> 17) & ((1ULL << (shift < 48 ? shift : 47)) - 1));
  }
  return values;
}

TEST(LatencyHistogram, EmptyReportsZeroes) {
  const LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.p50(), 0u);
  EXPECT_EQ(h.p999(), 0u);
}

TEST(LatencyHistogram, BucketGeometryCoversEveryValue) {
  const std::uint64_t probes[] = {0,    1,    63,   64,        65,
                                  127,  128,  129,  1000,      4095,
                                  4096, 1u << 20,   1ULL << 40, (1ULL << 62) + 5,
                                  ~0ULL};
  std::size_t prev_index = 0;
  for (const std::uint64_t v : probes) {
    const std::size_t idx = LatencyHistogram::index_of(v);
    ASSERT_LT(idx, LatencyHistogram::kBucketCount) << v;
    const std::uint64_t low = LatencyHistogram::bucket_low(idx);
    const std::uint64_t width = LatencyHistogram::bucket_width(idx);
    EXPECT_LE(low, v) << v;
    EXPECT_LT(v - low, width) << v;
    // Bounded relative width: exact below 64, <= low/32 above.
    if (v >= 64) {
      EXPECT_LE(width, low / 32) << v;
    } else {
      EXPECT_EQ(width, 1u) << v;
    }
    // Monotone: larger values never land in earlier buckets.
    EXPECT_GE(idx, prev_index) << v;
    prev_index = idx;
  }
}

TEST(LatencyHistogram, ExactRegionRecordsExactPercentiles) {
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < 64; ++v) h.record(v);
  EXPECT_EQ(h.count(), 64u);
  EXPECT_EQ(h.max(), 63u);
  // rank = ceil(p/100 * 64) - 1 in the sorted stream 0..63, and unit
  // buckets report their exact value.
  EXPECT_EQ(h.p50(), 31u);
  EXPECT_EQ(h.value_at_percentile(25.0), 15u);
  EXPECT_EQ(h.value_at_percentile(100.0), 63u);
  EXPECT_EQ(h.p999(), 63u);
}

TEST(LatencyHistogram, PercentilesMatchSortedOracleWithinQuantization) {
  const auto values = sample_stream(20000);
  LatencyHistogram h;
  for (const auto v : values) h.record(v);
  ASSERT_EQ(h.count(), values.size());

  std::vector<std::uint64_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(h.max(), sorted.back());

  for (const double p : {10.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    const std::size_t rank = static_cast<std::size_t>(
        std::max<double>(1.0, std::min<double>(
                                  static_cast<double>(sorted.size()),
                                  p / 100.0 * sorted.size() + 0.9999)));
    const std::uint64_t oracle = sorted[rank - 1];
    const std::uint64_t got = h.value_at_percentile(p);
    // The reported midpoint and the oracle sample share a bucket whose
    // width is at most low/32, so they differ by at most ~3.2% + 1.
    const std::uint64_t tolerance = oracle / 16 + 1;
    EXPECT_LE(got > oracle ? got - oracle : oracle - got, tolerance)
        << "p=" << p << " oracle=" << oracle << " got=" << got;
    // The tail must never exceed a real sample.
    EXPECT_LE(got, h.max());
  }
}

TEST(LatencyHistogram, MergeIsLossless) {
  const auto values = sample_stream(12000);
  LatencyHistogram all;
  LatencyHistogram shard[3];
  for (std::size_t i = 0; i < values.size(); ++i) {
    all.record(values[i]);
    shard[i % 3].record(values[i]);
  }
  LatencyHistogram merged;
  for (const auto& s : shard) merged.merge(s);
  // Elementwise-add merge == one histogram over the whole stream, bucket
  // for bucket (operator== compares counts, total, and max).
  EXPECT_TRUE(merged == all);
  EXPECT_EQ(merged.count(), all.count());
  EXPECT_EQ(merged.max(), all.max());
  EXPECT_EQ(merged.p999(), all.p999());
  // Merging an empty histogram changes nothing.
  merged.merge(LatencyHistogram());
  EXPECT_TRUE(merged == all);
}

TEST(LatencyHistogram, TopBucketSaturatesInsteadOfOverflowing) {
  LatencyHistogram h;
  h.record(~0ULL);
  h.record(1ULL << 63);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), ~0ULL);
  EXPECT_LE(h.value_at_percentile(100.0), ~0ULL);
  EXPECT_GE(h.value_at_percentile(100.0), 1ULL << 63);
}

TEST(LatencyHistogram, DeltaIsTheIntervalsOwnRecording) {
  // Record phase 1, snapshot, record phase 2: the delta of the two
  // cumulative snapshots must equal a histogram that saw only phase 2 —
  // bucket for bucket, count for count (the mirror of snapshot_delta).
  LatencyHistogram cumulative;
  for (std::uint64_t v : {3u, 70u, 900u, 900u, 12345u}) cumulative.record(v);
  const LatencyHistogram before = cumulative;

  LatencyHistogram phase2_only;
  for (std::uint64_t v : {5u, 70u, 4096u, 100000u}) {
    cumulative.record(v);
    phase2_only.record(v);
  }
  const LatencyHistogram delta = histogram_delta(before, cumulative);
  EXPECT_EQ(delta.count(), phase2_only.count());
  EXPECT_EQ(delta.p50(), phase2_only.p50());
  EXPECT_EQ(delta.p99(), phase2_only.p99());
  EXPECT_EQ(delta.value_at_percentile(100.0),
            phase2_only.value_at_percentile(100.0));
  // The interval max is bucket-quantized (cumulative snapshots cannot
  // recover it exactly): within one bucket of the true max, never above
  // a recorded sample.
  EXPECT_GE(delta.max(), 100000u - LatencyHistogram::bucket_width(
                                       LatencyHistogram::index_of(100000u)));
  EXPECT_LE(delta.max(), cumulative.max());
}

TEST(LatencyHistogram, DeltaOfIdenticalSnapshotsIsEmpty) {
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < 100; ++v) h.record(v * 17);
  const LatencyHistogram delta = histogram_delta(h, h);
  EXPECT_EQ(delta.count(), 0u);
  EXPECT_EQ(delta.max(), 0u);
  EXPECT_EQ(delta.p99(), 0u);
}

TEST(LatencyHistogram, DeltaMaxClampsToTheAfterSnapshotsObservedMax) {
  // Phase 2's top sample lands in the same bucket as phase 1's global
  // max: the clamp keeps the reported max at the real observed maximum
  // instead of the bucket's upper edge.
  LatencyHistogram cumulative;
  cumulative.record(5000);
  const LatencyHistogram before = cumulative;
  cumulative.record(4999);
  const LatencyHistogram delta = histogram_delta(before, cumulative);
  EXPECT_EQ(delta.count(), 1u);
  EXPECT_LE(delta.max(), cumulative.max());
}

}  // namespace
}  // namespace pqs::stats

// net::KvServer + net::Client — the TCP front end end to end over
// loopback.
//
// These are tier-1 tests (ASan/UBSan and TSan jobs run them), so they
// double as race checks for the epoll loops, the worker→IO completion
// handoff, and the client's reader threads. The load-bearing contract is
// the tentpole gate in miniature: with a single client connection the
// per-shard deterministic aggregates observed through the socket path
// must be bit-identical across service worker counts and draw paths.
// The rest pins down GET/PUT semantics, out-of-order response matching
// under pipelining, the inline STATS opcode, and that garbage on the
// wire closes the connection instead of wedging the server.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "net/client.h"
#include "net/frame.h"
#include "net/kv_server.h"
#include "quorum/threshold.h"
#include "serve/kv_service.h"
#include "workload/open_loop.h"

namespace pqs::net {
namespace {

std::shared_ptr<const quorum::QuorumSystem> majority(std::uint32_t n = 15) {
  return std::make_shared<quorum::ThresholdSystem>(
      quorum::ThresholdSystem::majority(n));
}

serve::KvService::Config service_config(std::uint32_t shards,
                                        std::uint32_t workers,
                                        replica::DrawPath path) {
  serve::KvService::Config cfg;
  cfg.shards = shards;
  cfg.workers = workers;
  cfg.queue_capacity = 256;
  cfg.quorums = majority();
  cfg.draw_path = path;
  cfg.seed = 99;
  return cfg;
}

// One server deployment driven over loopback by one pipelined
// connection; returns the service's per-shard aggregates.
std::vector<serve::ShardAggregate> run_over_socket(std::uint32_t workers,
                                                   replica::DrawPath path,
                                                   std::uint32_t io_threads,
                                                   std::uint64_t ops) {
  serve::KvService service(service_config(4, workers, path));
  KvServer::Config server_cfg;
  server_cfg.io_threads = io_threads;
  KvServer server(server_cfg, service);
  server.start();
  service.start();

  Client::Config client_cfg;
  client_cfg.port = server.port();
  client_cfg.connections = 1;
  Client client(client_cfg);
  client.start();

  workload::OpenLoopSpec spec;
  spec.keys = 64;
  spec.zipf_exponent = 0.99;
  workload::OpenLoopGenerator gen(spec, 321);
  workload::Operation op;
  for (std::uint64_t i = 0; i < ops; ++i) {
    gen.next(op);
    client.send(op.key, op.value, op.is_read, client.now_ns());
  }
  client.drain();
  EXPECT_EQ(client.received(), ops);
  EXPECT_EQ(client.histogram().count(), ops);
  client.stop();

  service.stop_and_drain();
  server.stop();
  return service.aggregates();
}

TEST(KvServer, PutThenGetRoundTripsTheValue) {
  serve::KvService service(
      service_config(2, 1, replica::DrawPath::kMask));
  KvServer server(KvServer::Config{}, service);
  server.start();
  ASSERT_GT(server.port(), 0);
  service.start();

  Client::Config cfg;
  cfg.port = server.port();
  Client client(cfg);
  client.start();
  client.send(/*key=*/7, /*value=*/1234, /*is_read=*/false, client.now_ns());
  client.drain();
  client.send(/*key=*/7, /*value=*/0, /*is_read=*/true, client.now_ns());
  client.send(/*key=*/8, /*value=*/0, /*is_read=*/true, client.now_ns());
  client.drain();

  EXPECT_EQ(client.sent(), 3u);
  EXPECT_EQ(client.received(), 3u);
  // Majority quorums always intersect: key 7 reads back its write, key 8
  // was never written.
  EXPECT_EQ(client.reads_found(), 1u);
  EXPECT_EQ(client.reads_empty(), 1u);
  client.stop();

  service.stop_and_drain();
  EXPECT_EQ(service.fold_aggregates().writes, 1u);
  EXPECT_EQ(service.fold_aggregates().reads, 2u);
  EXPECT_EQ(server.ops_submitted(), 3u);
  server.stop();
}

TEST(KvServer, AggregatesBitIdenticalAcrossWorkersAndDrawPathsOverTcp) {
  constexpr std::uint64_t kOps = 2000;
  using replica::DrawPath;
  const auto base = run_over_socket(1, DrawPath::kMask, 1, kOps);
  ASSERT_EQ(base.size(), 4u);
  EXPECT_EQ(base, run_over_socket(4, DrawPath::kMask, 1, kOps));
  EXPECT_EQ(base, run_over_socket(4, DrawPath::kAllocating, 1, kOps));
  // More IO threads change nothing either: one connection still decodes
  // on one thread, in wire order.
  EXPECT_EQ(base, run_over_socket(2, DrawPath::kMask, 2, kOps));
}

TEST(KvServer, PipelinedResponsesMatchOutOfOrderCompletions) {
  // 8 shards × 4 workers: completions interleave across shards, so
  // responses come back out of send order and only the request_id echo
  // can pair them. The client asserts every response matches a pending
  // request (a mismatch fails the connection).
  serve::KvService service(
      service_config(8, 4, replica::DrawPath::kMask));
  KvServer::Config server_cfg;
  server_cfg.io_threads = 2;
  KvServer server(server_cfg, service);
  server.start();
  service.start();

  Client::Config cfg;
  cfg.port = server.port();
  cfg.connections = 2;
  cfg.window = 64;
  Client client(cfg);
  client.start();
  for (std::uint64_t i = 0; i < 4000; ++i) {
    const bool read = (i % 3) == 0;
    client.send(i % 97, static_cast<std::int64_t>(i), read, client.now_ns());
  }
  client.drain();
  EXPECT_EQ(client.received(), 4000u);
  client.stop();
  service.stop_and_drain();
  const serve::ShardAggregate fold = service.fold_aggregates();
  EXPECT_EQ(fold.reads + fold.writes, 4000u);
  server.stop();
}

TEST(KvServer, StatsOpcodeAnsweredInlineFromTheIoThread) {
  serve::KvService service(
      service_config(1, 1, replica::DrawPath::kMask));
  KvServer server(KvServer::Config{}, service);
  server.start();
  service.start();

  Client::Config cfg;
  cfg.port = server.port();
  Client client(cfg);
  client.start();
  client.send(1, 11, false, client.now_ns());
  client.send(2, 22, false, client.now_ns());
  client.drain();
  client.stop();

  // Raw socket: a STATS request frame, answered without a service round
  // trip (ops_submitted counts only GET/PUT).
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  Frame req;
  req.op = Op::kStats;
  req.request_id = 77;
  unsigned char wire[kFrameBytes];
  encode_frame(req, wire);
  ASSERT_EQ(::send(fd, wire, kFrameBytes, 0),
            static_cast<ssize_t>(kFrameBytes));

  FrameDecoder decoder;
  Frame reply;
  for (;;) {
    unsigned char buf[kFrameBytes];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0);
    decoder.feed(buf, static_cast<std::size_t>(n));
    const FrameDecoder::Result r = decoder.next(reply);
    if (r == FrameDecoder::Result::kFrame) break;
    ASSERT_EQ(r, FrameDecoder::Result::kNeedMore);
  }
  EXPECT_EQ(reply.op, Op::kStats);
  EXPECT_TRUE(reply.response);
  EXPECT_EQ(reply.request_id, 77u);
  EXPECT_EQ(reply.value, 2);  // the two PUTs
  EXPECT_EQ(server.stats_served(), 1u);
  ::close(fd);

  service.stop_and_drain();
  server.stop();
}

TEST(KvServer, GarbageBytesCloseTheConnectionNotTheServer) {
  serve::KvService service(
      service_config(1, 1, replica::DrawPath::kMask));
  KvServer server(KvServer::Config{}, service);
  server.start();
  service.start();

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char garbage[] = "this is not a frame at all, not even close";
  ASSERT_GT(::send(fd, garbage, sizeof(garbage), 0), 0);
  // The server condemns the stream and closes; the read drains to EOF.
  char buf[64];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
  }
  EXPECT_EQ(n, 0);
  EXPECT_GE(server.protocol_errors(), 1u);
  ::close(fd);

  // The listener survived: a well-formed client still gets service.
  Client::Config cfg;
  cfg.port = server.port();
  Client client(cfg);
  client.start();
  client.send(5, 55, false, client.now_ns());
  client.drain();
  EXPECT_EQ(client.received(), 1u);
  client.stop();

  service.stop_and_drain();
  server.stop();
}

// ---- injected connection faults vs the hardened client --------------------

// One server deployment with an injected fault pinned on the first
// accepted connection, driven by a deadline-armed client. Returns the
// client's recovery counters; the caller asserts the fault-specific
// shape. `ops` all complete: the injected fault may kill or wedge the
// first server-side connection, but retries (new request ids, routed to
// a usable or freshly reconnected connection — which gets a new
// server-side id, out from under the pinned override) must finish the
// run with nothing abandoned.
ClientStats run_against_fault(FaultInjector& injector,
                              std::uint32_t client_connections,
                              std::uint64_t ops) {
  serve::KvService service(
      service_config(2, 2, replica::DrawPath::kMask));
  KvServer::Config server_cfg;
  server_cfg.fault_injector = &injector;
  KvServer server(server_cfg, service);
  server.start();
  service.start();

  Client::Config cfg;
  cfg.port = server.port();
  cfg.connections = client_connections;
  cfg.window = 16;
  cfg.request_timeout_ns = 100'000'000;  // 100ms (generous for TSan)
  cfg.max_retries = 5;
  Client client(cfg);
  client.start();
  for (std::uint64_t i = 0; i < ops; ++i) {
    client.send(i % 31, static_cast<std::int64_t>(i), (i % 2) == 0,
                client.now_ns());
  }
  client.drain();
  EXPECT_EQ(client.received(), ops);
  const ClientStats stats = client.stats();
  EXPECT_EQ(stats.abandoned, 0u);
  client.stop();
  service.stop_and_drain();
  server.stop();
  return stats;
}

TEST(KvServerFaults, ResetMidRunRecoversByReconnecting) {
  // The first response on connection 1 turns into SO_LINGER(0)+close: the
  // client sees ECONNRESET with a window of requests in flight, reaps
  // them on deadline, reconnects, and retries — every op still completes.
  FaultInjector injector;
  injector.set_action(1, FaultAction::kReset);
  const ClientStats stats = run_against_fault(injector, 1, 50);
  EXPECT_GE(injector.resets(), 1u);
  EXPECT_GE(stats.reconnects, 1u);
  EXPECT_GT(stats.retries, 0u);
}

TEST(KvServerFaults, TruncatedFrameRecoversByReconnecting) {
  // Half a response frame, then an orderly close: the reader is left
  // mid-frame at EOF, which must fail the connection (not wedge the
  // decoder) and hand recovery to the driver's deadline machinery.
  FaultInjector injector;
  injector.set_action(1, FaultAction::kTruncate);
  const ClientStats stats = run_against_fault(injector, 1, 50);
  EXPECT_GE(injector.truncates(), 1u);
  EXPECT_GE(stats.reconnects, 1u);
  EXPECT_GT(stats.retries, 0u);
}

TEST(KvServerFaults, SlowLorisStallIsolatedToOneConnection) {
  // Connection 1 queues every response but never flushes — no EOF, no
  // error, just silence. Its requests must time out and fail over to the
  // healthy second connection while that connection's requests proceed
  // undisturbed; the stalled socket stays wedged through server stop()
  // (the shutdown drain deliberately skips stalled connections).
  FaultInjector injector;
  injector.set_action(1, FaultAction::kStall);
  const ClientStats stats = run_against_fault(injector, 2, 50);
  EXPECT_GE(injector.stalls(), 1u);
  EXPECT_GT(stats.timeouts, 0u);
  EXPECT_GT(stats.failovers, 0u);
}

TEST(KvServerFaults, DelayedResponsesCompleteWithoutDeadlines) {
  // kDelay defers each flush through the event loop's timer queue but
  // loses nothing, so even the strict legacy client (no deadlines, any
  // anomaly fatal) must see every response — this pins the timer path as
  // a pure reordering-free delay.
  FaultInjector::Config fcfg;
  fcfg.delay_ns = 2'000'000;
  FaultInjector injector(fcfg);
  injector.set_action(1, FaultAction::kDelay);

  serve::KvService service(
      service_config(2, 2, replica::DrawPath::kMask));
  KvServer::Config server_cfg;
  server_cfg.fault_injector = &injector;
  KvServer server(server_cfg, service);
  server.start();
  service.start();

  Client::Config cfg;
  cfg.port = server.port();
  Client client(cfg);  // strict: request_timeout_ns = 0
  client.start();
  for (std::uint64_t i = 0; i < 40; ++i) {
    client.send(i % 7, static_cast<std::int64_t>(i), (i % 2) == 0,
                client.now_ns());
  }
  client.drain();
  EXPECT_EQ(client.received(), 40u);
  EXPECT_GE(injector.delays(), 40u);
  client.stop();
  service.stop_and_drain();
  server.stop();
}

}  // namespace
}  // namespace pqs::net

// net::KvServer + net::Client — the TCP front end end to end over
// loopback.
//
// These are tier-1 tests (ASan/UBSan and TSan jobs run them), so they
// double as race checks for the epoll loops, the worker→IO completion
// handoff, and the client's reader threads. The load-bearing contract is
// the tentpole gate in miniature: with a single client connection the
// per-shard deterministic aggregates observed through the socket path
// must be bit-identical across service worker counts and draw paths.
// The rest pins down GET/PUT semantics, out-of-order response matching
// under pipelining, the inline STATS opcode, and that garbage on the
// wire closes the connection instead of wedging the server.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "net/client.h"
#include "net/frame.h"
#include "net/kv_server.h"
#include "quorum/threshold.h"
#include "serve/kv_service.h"
#include "workload/open_loop.h"

namespace pqs::net {
namespace {

std::shared_ptr<const quorum::QuorumSystem> majority(std::uint32_t n = 15) {
  return std::make_shared<quorum::ThresholdSystem>(
      quorum::ThresholdSystem::majority(n));
}

serve::KvService::Config service_config(std::uint32_t shards,
                                        std::uint32_t workers,
                                        replica::DrawPath path) {
  serve::KvService::Config cfg;
  cfg.shards = shards;
  cfg.workers = workers;
  cfg.queue_capacity = 256;
  cfg.quorums = majority();
  cfg.draw_path = path;
  cfg.seed = 99;
  return cfg;
}

// One server deployment driven over loopback by one pipelined
// connection; returns the service's per-shard aggregates.
std::vector<serve::ShardAggregate> run_over_socket(std::uint32_t workers,
                                                   replica::DrawPath path,
                                                   std::uint32_t io_threads,
                                                   std::uint64_t ops) {
  serve::KvService service(service_config(4, workers, path));
  KvServer::Config server_cfg;
  server_cfg.io_threads = io_threads;
  KvServer server(server_cfg, service);
  server.start();
  service.start();

  Client::Config client_cfg;
  client_cfg.port = server.port();
  client_cfg.connections = 1;
  Client client(client_cfg);
  client.start();

  workload::OpenLoopSpec spec;
  spec.keys = 64;
  spec.zipf_exponent = 0.99;
  workload::OpenLoopGenerator gen(spec, 321);
  workload::Operation op;
  for (std::uint64_t i = 0; i < ops; ++i) {
    gen.next(op);
    client.send(op.key, op.value, op.is_read, client.now_ns());
  }
  client.drain();
  EXPECT_EQ(client.received(), ops);
  EXPECT_EQ(client.histogram().count(), ops);
  client.stop();

  service.stop_and_drain();
  server.stop();
  return service.aggregates();
}

TEST(KvServer, PutThenGetRoundTripsTheValue) {
  serve::KvService service(
      service_config(2, 1, replica::DrawPath::kMask));
  KvServer server(KvServer::Config{}, service);
  server.start();
  ASSERT_GT(server.port(), 0);
  service.start();

  Client::Config cfg;
  cfg.port = server.port();
  Client client(cfg);
  client.start();
  client.send(/*key=*/7, /*value=*/1234, /*is_read=*/false, client.now_ns());
  client.drain();
  client.send(/*key=*/7, /*value=*/0, /*is_read=*/true, client.now_ns());
  client.send(/*key=*/8, /*value=*/0, /*is_read=*/true, client.now_ns());
  client.drain();

  EXPECT_EQ(client.sent(), 3u);
  EXPECT_EQ(client.received(), 3u);
  // Majority quorums always intersect: key 7 reads back its write, key 8
  // was never written.
  EXPECT_EQ(client.reads_found(), 1u);
  EXPECT_EQ(client.reads_empty(), 1u);
  client.stop();

  service.stop_and_drain();
  EXPECT_EQ(service.fold_aggregates().writes, 1u);
  EXPECT_EQ(service.fold_aggregates().reads, 2u);
  EXPECT_EQ(server.ops_submitted(), 3u);
  server.stop();
}

TEST(KvServer, AggregatesBitIdenticalAcrossWorkersAndDrawPathsOverTcp) {
  constexpr std::uint64_t kOps = 2000;
  using replica::DrawPath;
  const auto base = run_over_socket(1, DrawPath::kMask, 1, kOps);
  ASSERT_EQ(base.size(), 4u);
  EXPECT_EQ(base, run_over_socket(4, DrawPath::kMask, 1, kOps));
  EXPECT_EQ(base, run_over_socket(4, DrawPath::kAllocating, 1, kOps));
  // More IO threads change nothing either: one connection still decodes
  // on one thread, in wire order.
  EXPECT_EQ(base, run_over_socket(2, DrawPath::kMask, 2, kOps));
}

TEST(KvServer, PipelinedResponsesMatchOutOfOrderCompletions) {
  // 8 shards × 4 workers: completions interleave across shards, so
  // responses come back out of send order and only the request_id echo
  // can pair them. The client asserts every response matches a pending
  // request (a mismatch fails the connection).
  serve::KvService service(
      service_config(8, 4, replica::DrawPath::kMask));
  KvServer::Config server_cfg;
  server_cfg.io_threads = 2;
  KvServer server(server_cfg, service);
  server.start();
  service.start();

  Client::Config cfg;
  cfg.port = server.port();
  cfg.connections = 2;
  cfg.window = 64;
  Client client(cfg);
  client.start();
  for (std::uint64_t i = 0; i < 4000; ++i) {
    const bool read = (i % 3) == 0;
    client.send(i % 97, static_cast<std::int64_t>(i), read, client.now_ns());
  }
  client.drain();
  EXPECT_EQ(client.received(), 4000u);
  client.stop();
  service.stop_and_drain();
  const serve::ShardAggregate fold = service.fold_aggregates();
  EXPECT_EQ(fold.reads + fold.writes, 4000u);
  server.stop();
}

TEST(KvServer, StatsOpcodeAnsweredInlineFromTheIoThread) {
  serve::KvService service(
      service_config(1, 1, replica::DrawPath::kMask));
  KvServer server(KvServer::Config{}, service);
  server.start();
  service.start();

  Client::Config cfg;
  cfg.port = server.port();
  Client client(cfg);
  client.start();
  client.send(1, 11, false, client.now_ns());
  client.send(2, 22, false, client.now_ns());
  client.drain();
  client.stop();

  // Raw socket: a STATS request frame, answered without a service round
  // trip (ops_submitted counts only GET/PUT).
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  Frame req;
  req.op = Op::kStats;
  req.request_id = 77;
  unsigned char wire[kFrameBytes];
  encode_frame(req, wire);
  ASSERT_EQ(::send(fd, wire, kFrameBytes, 0),
            static_cast<ssize_t>(kFrameBytes));

  FrameDecoder decoder;
  Frame reply;
  for (;;) {
    unsigned char buf[kFrameBytes];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0);
    decoder.feed(buf, static_cast<std::size_t>(n));
    const FrameDecoder::Result r = decoder.next(reply);
    if (r == FrameDecoder::Result::kFrame) break;
    ASSERT_EQ(r, FrameDecoder::Result::kNeedMore);
  }
  EXPECT_EQ(reply.op, Op::kStats);
  EXPECT_TRUE(reply.response);
  EXPECT_EQ(reply.request_id, 77u);
  EXPECT_EQ(reply.value, 2);  // the two PUTs
  EXPECT_EQ(server.stats_served(), 1u);
  ::close(fd);

  service.stop_and_drain();
  server.stop();
}

TEST(KvServer, GarbageBytesCloseTheConnectionNotTheServer) {
  serve::KvService service(
      service_config(1, 1, replica::DrawPath::kMask));
  KvServer server(KvServer::Config{}, service);
  server.start();
  service.start();

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char garbage[] = "this is not a frame at all, not even close";
  ASSERT_GT(::send(fd, garbage, sizeof(garbage), 0), 0);
  // The server condemns the stream and closes; the read drains to EOF.
  char buf[64];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
  }
  EXPECT_EQ(n, 0);
  EXPECT_GE(server.protocol_errors(), 1u);
  ::close(fd);

  // The listener survived: a well-formed client still gets service.
  Client::Config cfg;
  cfg.port = server.port();
  Client client(cfg);
  client.start();
  client.send(5, 55, false, client.now_ns());
  client.drain();
  EXPECT_EQ(client.received(), 1u);
  client.stop();

  service.stop_and_drain();
  server.stop();
}

// ---- injected connection faults vs the hardened client --------------------

// One server deployment with an injected fault pinned on the first
// accepted connection, driven by a deadline-armed client. Returns the
// client's recovery counters; the caller asserts the fault-specific
// shape. `ops` all complete: the injected fault may kill or wedge the
// first server-side connection, but retries (new request ids, routed to
// a usable or freshly reconnected connection — which gets a new
// server-side id, out from under the pinned override) must finish the
// run with nothing abandoned.
ClientStats run_against_fault(FaultInjector& injector,
                              std::uint32_t client_connections,
                              std::uint64_t ops) {
  serve::KvService service(
      service_config(2, 2, replica::DrawPath::kMask));
  KvServer::Config server_cfg;
  server_cfg.fault_injector = &injector;
  KvServer server(server_cfg, service);
  server.start();
  service.start();

  Client::Config cfg;
  cfg.port = server.port();
  cfg.connections = client_connections;
  cfg.window = 16;
  cfg.request_timeout_ns = 100'000'000;  // 100ms (generous for TSan)
  cfg.max_retries = 5;
  Client client(cfg);
  client.start();
  for (std::uint64_t i = 0; i < ops; ++i) {
    client.send(i % 31, static_cast<std::int64_t>(i), (i % 2) == 0,
                client.now_ns());
  }
  client.drain();
  EXPECT_EQ(client.received(), ops);
  const ClientStats stats = client.stats();
  EXPECT_EQ(stats.abandoned, 0u);
  client.stop();
  service.stop_and_drain();
  server.stop();
  return stats;
}

TEST(KvServerFaults, ResetMidRunRecoversByReconnecting) {
  // The first response on connection 1 turns into SO_LINGER(0)+close: the
  // client sees ECONNRESET with a window of requests in flight, reaps
  // them on deadline, reconnects, and retries — every op still completes.
  FaultInjector injector;
  injector.set_action(1, FaultAction::kReset);
  const ClientStats stats = run_against_fault(injector, 1, 50);
  EXPECT_GE(injector.resets(), 1u);
  EXPECT_GE(stats.reconnects, 1u);
  EXPECT_GT(stats.retries, 0u);
}

TEST(KvServerFaults, TruncatedFrameRecoversByReconnecting) {
  // Half a response frame, then an orderly close: the reader is left
  // mid-frame at EOF, which must fail the connection (not wedge the
  // decoder) and hand recovery to the driver's deadline machinery.
  FaultInjector injector;
  injector.set_action(1, FaultAction::kTruncate);
  const ClientStats stats = run_against_fault(injector, 1, 50);
  EXPECT_GE(injector.truncates(), 1u);
  EXPECT_GE(stats.reconnects, 1u);
  EXPECT_GT(stats.retries, 0u);
}

TEST(KvServerFaults, SlowLorisStallIsolatedToOneConnection) {
  // Connection 1 queues every response but never flushes — no EOF, no
  // error, just silence. Its requests must time out and fail over to the
  // healthy second connection while that connection's requests proceed
  // undisturbed; the stalled socket stays wedged through server stop()
  // (the shutdown drain deliberately skips stalled connections).
  FaultInjector injector;
  injector.set_action(1, FaultAction::kStall);
  const ClientStats stats = run_against_fault(injector, 2, 50);
  EXPECT_GE(injector.stalls(), 1u);
  EXPECT_GT(stats.timeouts, 0u);
  EXPECT_GT(stats.failovers, 0u);
}

TEST(KvServerFaults, DelayedResponsesCompleteWithoutDeadlines) {
  // kDelay defers each flush through the event loop's timer queue but
  // loses nothing, so even the strict legacy client (no deadlines, any
  // anomaly fatal) must see every response — this pins the timer path as
  // a pure reordering-free delay.
  FaultInjector::Config fcfg;
  fcfg.delay_ns = 2'000'000;
  FaultInjector injector(fcfg);
  injector.set_action(1, FaultAction::kDelay);

  serve::KvService service(
      service_config(2, 2, replica::DrawPath::kMask));
  KvServer::Config server_cfg;
  server_cfg.fault_injector = &injector;
  KvServer server(server_cfg, service);
  server.start();
  service.start();

  Client::Config cfg;
  cfg.port = server.port();
  Client client(cfg);  // strict: request_timeout_ns = 0
  client.start();
  for (std::uint64_t i = 0; i < 40; ++i) {
    client.send(i % 7, static_cast<std::int64_t>(i), (i % 2) == 0,
                client.now_ns());
  }
  client.drain();
  EXPECT_EQ(client.received(), 40u);
  EXPECT_GE(injector.delays(), 40u);
  client.stop();
  service.stop_and_drain();
  server.stop();
}

// ---- randomized-probability injection (the probabilistic mode) ------------

// The injector's determinism contract, unit-level: two injectors with the
// same seed produce the same verdict sequence word for word, and explicit
// overrides consume no rng draws (the randomized stream is unperturbed by
// any number of override judgments interleaved into it).
TEST(FaultInjectorProbabilistic, SeededStreamIsDeterministicAndOverridesDrawNothing) {
  FaultInjector::Config fcfg;
  fcfg.seed = 0xca3b00d1eULL;
  fcfg.reset_prob = 0.10;
  fcfg.stall_prob = 0.05;
  fcfg.truncate_prob = 0.10;
  fcfg.delay_prob = 0.20;
  FaultInjector a(fcfg);
  FaultInjector b(fcfg);
  b.set_action(7, FaultAction::kReset);

  constexpr int kJudgments = 600;
  std::vector<FaultAction> va, vb;
  for (int i = 0; i < kJudgments; ++i) {
    va.push_back(a.on_response(1));
    // An override verdict between b's randomized draws: pinned, drawn
    // from no stream.
    EXPECT_EQ(b.on_response(7), FaultAction::kReset);
    vb.push_back(b.on_response(1));
  }
  EXPECT_TRUE(va == vb)
      << "identically-seeded injectors diverged, or overrides drew words";
  // At these probabilities every action fires in 600 draws (each is a
  // deterministic function of the seed, so this can never flake).
  EXPECT_GT(a.resets(), 0u);
  EXPECT_GT(a.stalls(), 0u);
  EXPECT_GT(a.truncates(), 0u);
  EXPECT_GT(a.delays(), 0u);
  // Counters see overrides too: b took every one of a's stream resets
  // plus kJudgments pinned ones.
  EXPECT_EQ(b.resets(), a.resets() + kJudgments);
  EXPECT_EQ(b.stalls(), a.stalls());
  EXPECT_EQ(b.truncates(), a.truncates());
  EXPECT_EQ(b.delays(), a.delays());
}

TEST(KvServerFaults, ProbabilisticCampaignRecoversEverything) {
  // Randomized-probability mode end to end: every response is judged by
  // the injector's own seeded stream — a mix of connection kills (reset,
  // truncate) and benign delays lands at unplanned points in the run,
  // including mid-window and on retries. The hardened client must finish
  // every op with nothing abandoned (run_against_fault asserts this),
  // twice: the second campaign is a rerun of the same seed, so recovery
  // is a reproducible property of the deployment, not a lucky
  // interleaving.
  FaultInjector::Config fcfg;
  fcfg.reset_prob = 0.02;
  fcfg.truncate_prob = 0.02;
  fcfg.delay_prob = 0.08;
  for (int run = 0; run < 2; ++run) {
    FaultInjector injector(fcfg);
    const ClientStats stats = run_against_fault(injector, 2, 200);
    // The first 200 verdicts are a pure function of the seed, so the
    // campaign is guaranteed a healthy fault mix on every rerun.
    const std::uint64_t fired =
        injector.resets() + injector.truncates() + injector.delays();
    EXPECT_GE(fired, 5u) << "run " << run;
    EXPECT_EQ(injector.stalls(), 0u) << "run " << run;
    if (injector.resets() + injector.truncates() > 0) {
      EXPECT_GE(stats.reconnects, 1u) << "run " << run;
    }
  }
}

// ---- adversarial clients (protocol robustness over real sockets) ----------

int raw_connect(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

void send_all(int fd, const unsigned char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t sent = ::send(fd, data + off, n - off, 0);
    ASSERT_GT(sent, 0);
    off += static_cast<std::size_t>(sent);
  }
}

// Blocks until one full response frame decodes off `fd`.
bool read_frame(int fd, FrameDecoder& decoder, Frame& out) {
  for (;;) {
    if (decoder.next(out) == FrameDecoder::Result::kFrame) return true;
    unsigned char buf[64];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    decoder.feed(buf, static_cast<std::size_t>(n));
  }
}

TEST(KvServerAdversarial, BadOpcodeCondemnsOnlyThatConnection) {
  serve::KvService service(service_config(2, 1, replica::DrawPath::kMask));
  KvServer server(KvServer::Config{}, service);
  server.start();
  service.start();

  // A healthy pipelined client shares the server with the adversary for
  // the whole attack.
  Client::Config cfg;
  cfg.port = server.port();
  Client client(cfg);
  client.start();
  for (std::uint64_t i = 0; i < 20; ++i) {
    client.send(i % 5, static_cast<std::int64_t>(i), (i % 2) == 0,
                client.now_ns());
  }

  // Length-valid frame, every opcode bit set: decodes far enough to name
  // the opcode unknown, which condemns the stream.
  const int fd = raw_connect(server.port());
  unsigned char wire[kFrameBytes];
  Frame probe;
  probe.op = Op::kGet;
  probe.request_id = 1;
  encode_frame(probe, wire);
  wire[7] = kOpMask;  // opcode 0x3f: not a v1 Op
  send_all(fd, wire, sizeof(wire));
  char drain[64];
  ssize_t n;
  while ((n = ::recv(fd, drain, sizeof(drain), 0)) > 0) {
  }
  EXPECT_EQ(n, 0);  // orderly close, not a hang or a crash
  ::close(fd);
  EXPECT_GE(server.protocol_errors(), 1u);

  // The healthy connection never noticed.
  client.drain();
  EXPECT_EQ(client.received(), 20u);
  client.stop();
  service.stop_and_drain();
  server.stop();
}

TEST(KvServerAdversarial, OversizedBodyLengthCondemnsAfterFourBytes) {
  serve::KvService service(service_config(1, 1, replica::DrawPath::kMask));
  KvServer server(KvServer::Config{}, service);
  server.start();
  service.start();

  // A length prefix promising a 2 GiB body: the server must condemn on
  // the prefix alone instead of buffering toward a frame that will never
  // arrive (the slow-memory-exhaustion shape of a length-prefix
  // protocol attack).
  const int fd = raw_connect(server.port());
  const unsigned char huge_len[4] = {0xff, 0xff, 0xff, 0x7f};
  send_all(fd, huge_len, sizeof(huge_len));
  char drain[64];
  ssize_t n;
  while ((n = ::recv(fd, drain, sizeof(drain), 0)) > 0) {
  }
  EXPECT_EQ(n, 0);
  ::close(fd);
  EXPECT_GE(server.protocol_errors(), 1u);

  // The listener survived the attack.
  Client::Config cfg;
  cfg.port = server.port();
  Client client(cfg);
  client.start();
  client.send(3, 33, false, client.now_ns());
  client.drain();
  EXPECT_EQ(client.received(), 1u);
  client.stop();
  service.stop_and_drain();
  server.stop();
}

TEST(KvServerAdversarial, ReplayedRequestIdsEachGetTheirOwnResponse) {
  serve::KvService service(service_config(2, 1, replica::DrawPath::kMask));
  KvServer server(KvServer::Config{}, service);
  server.start();
  service.start();

  // request_id is an opaque echo, not a dedup key: a client replaying an
  // id must get one response per request, all echoing the replayed id.
  const int fd = raw_connect(server.port());
  FrameDecoder decoder;
  unsigned char wire[kFrameBytes];
  Frame req;
  Frame resp;

  req.op = Op::kPut;
  req.request_id = 5;
  req.key = 9;
  req.value = 99;
  encode_frame(req, wire);
  send_all(fd, wire, sizeof(wire));
  ASSERT_TRUE(read_frame(fd, decoder, resp));
  EXPECT_EQ(resp.request_id, 5u);

  req.op = Op::kGet;
  req.value = 0;
  for (int replay = 0; replay < 2; ++replay) {
    encode_frame(req, wire);
    send_all(fd, wire, sizeof(wire));
  }
  for (int replay = 0; replay < 2; ++replay) {
    ASSERT_TRUE(read_frame(fd, decoder, resp));
    EXPECT_TRUE(resp.response);
    EXPECT_EQ(resp.request_id, 5u);
    // Majority quorums always intersect: both replays read the write.
    EXPECT_TRUE(resp.found);
    EXPECT_EQ(resp.value, 99);
  }
  ::close(fd);
  EXPECT_EQ(server.protocol_errors(), 0u);
  service.stop_and_drain();
  server.stop();
}

TEST(KvServerAdversarial, SharedRequestIdsStayOnTheirOwnConnections) {
  serve::KvService service(service_config(2, 1, replica::DrawPath::kMask));
  KvServer server(KvServer::Config{}, service);
  server.start();
  service.start();

  // Two connections using the same request_id for different keys: each
  // socket must receive exactly its own answer — any cross-connection
  // response routing or shared per-id state would swap the payloads.
  const int fd_a = raw_connect(server.port());
  const int fd_b = raw_connect(server.port());
  FrameDecoder dec_a;
  FrameDecoder dec_b;
  unsigned char wire[kFrameBytes];
  Frame req;
  Frame resp;

  req.op = Op::kPut;
  req.request_id = 7;
  req.key = 40;
  req.value = 4040;
  encode_frame(req, wire);
  send_all(fd_a, wire, sizeof(wire));
  ASSERT_TRUE(read_frame(fd_a, dec_a, resp));

  req.op = Op::kGet;
  req.request_id = 7;
  req.key = 40;  // written: only A's key holds a record
  req.value = 0;
  encode_frame(req, wire);
  send_all(fd_a, wire, sizeof(wire));
  req.key = 41;  // never written
  encode_frame(req, wire);
  send_all(fd_b, wire, sizeof(wire));

  ASSERT_TRUE(read_frame(fd_a, dec_a, resp));
  EXPECT_EQ(resp.request_id, 7u);
  EXPECT_TRUE(resp.found);
  EXPECT_EQ(resp.value, 4040);
  ASSERT_TRUE(read_frame(fd_b, dec_b, resp));
  EXPECT_EQ(resp.request_id, 7u);
  EXPECT_FALSE(resp.found);

  ::close(fd_a);
  ::close(fd_b);
  EXPECT_EQ(server.protocol_errors(), 0u);
  service.stop_and_drain();
  server.stop();
}

}  // namespace
}  // namespace pqs::net

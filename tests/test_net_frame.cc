// net::Frame and net::FrameDecoder — the wire protocol's contract.
//
// The decoder is incremental over a ring buffer, so the load-bearing
// property is split-invariance: a stream of frames must decode to the
// same sequence no matter how the bytes are chopped into reads, where
// the ring's wrap point falls, or how full the ring runs. The fuzz
// sections drive thousands of randomized split points and ring phases
// (seeded math::Rng — reproducible) and assert byte-exact round trips;
// the rejection sections pin down the garbage paths (bad length, magic,
// version, opcode) and that a condemned stream stays condemned. Tier-1,
// so the ASan/UBSan and TSan jobs cover every parser branch.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "math/rng.h"
#include "net/frame.h"

namespace pqs::net {
namespace {

Frame make_frame(std::uint64_t i) {
  Frame f;
  switch (i % 3) {
    case 0:
      f.op = Op::kGet;
      break;
    case 1:
      f.op = Op::kPut;
      break;
    default:
      f.op = Op::kStats;
      break;
  }
  f.response = (i % 2) == 0;
  f.found = (i % 5) == 0;
  f.request_id = 0x1111111111111111ULL * (i + 1);
  f.key = i * 0x9e3779b97f4a7c15ULL;
  f.value = static_cast<std::int64_t>(i) - 500;
  return f;
}

bool same(const Frame& a, const Frame& b) {
  return a.op == b.op && a.response == b.response && a.found == b.found &&
         a.request_id == b.request_id && a.key == b.key && a.value == b.value;
}

TEST(Frame, EncodeLayoutIsLittleEndianWithLengthPrefix) {
  Frame f;
  f.op = Op::kPut;
  f.response = true;
  f.found = true;
  f.request_id = 0x0102030405060708ULL;
  f.key = 42;
  f.value = -1;
  unsigned char wire[kFrameBytes];
  encode_frame(f, wire);
  EXPECT_EQ(wire[0], kBodyBytes);  // length prefix, little-endian
  EXPECT_EQ(wire[1], 0u);
  EXPECT_EQ(wire[4], 0x50u);  // 'P'
  EXPECT_EQ(wire[5], 0x51u);  // 'Q'
  EXPECT_EQ(wire[6], kVersion);
  EXPECT_EQ(wire[7], static_cast<unsigned char>(2 | kFoundBit | kResponseBit));
  EXPECT_EQ(wire[8], 0x08u);   // request_id low byte first
  EXPECT_EQ(wire[15], 0x01u);  // ...high byte last
  EXPECT_EQ(wire[16], 42u);
  for (std::size_t i = 24; i < kFrameBytes; ++i) EXPECT_EQ(wire[i], 0xffu);
}

TEST(Frame, RoundTripSingleFrame) {
  for (std::uint64_t i = 0; i < 64; ++i) {
    const Frame in = make_frame(i);
    unsigned char wire[kFrameBytes];
    encode_frame(in, wire);
    FrameDecoder decoder;
    ASSERT_EQ(decoder.feed(wire, kFrameBytes), kFrameBytes);
    Frame out;
    ASSERT_EQ(decoder.next(out), FrameDecoder::Result::kFrame);
    EXPECT_TRUE(same(in, out)) << "frame " << i;
    EXPECT_EQ(decoder.next(out), FrameDecoder::Result::kNeedMore);
  }
}

// The fuzz core: K frames encoded into one byte string, fed to the
// decoder in random-sized chunks, drained eagerly after every chunk. The
// decoded sequence must match the encoded one exactly regardless of the
// split points. A small ring capacity forces constant wrapping, so the
// two-span writable() path and wrap-straddling parses are exercised too.
void run_split_fuzz(std::uint64_t seed, std::size_t ring_capacity,
                    std::size_t frames, std::size_t max_chunk) {
  math::Rng rng(seed);
  std::vector<unsigned char> stream(frames * kFrameBytes);
  std::vector<Frame> expected;
  expected.reserve(frames);
  for (std::size_t i = 0; i < frames; ++i) {
    const Frame f = make_frame(rng.next());
    expected.push_back(f);
    encode_frame(f, stream.data() + i * kFrameBytes);
  }

  FrameDecoder decoder(ring_capacity);
  std::vector<Frame> decoded;
  decoded.reserve(frames);
  std::size_t offset = 0;
  Frame out;
  while (offset < stream.size()) {
    const std::size_t want =
        1 + static_cast<std::size_t>(rng.next() % max_chunk);
    const std::size_t chunk = std::min(want, stream.size() - offset);
    offset += decoder.feed(stream.data() + offset, chunk);
    for (;;) {
      const FrameDecoder::Result r = decoder.next(out);
      if (r != FrameDecoder::Result::kFrame) {
        ASSERT_EQ(r, FrameDecoder::Result::kNeedMore);
        break;
      }
      decoded.push_back(out);
    }
  }
  ASSERT_EQ(decoded.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_TRUE(same(decoded[i], expected[i])) << "frame " << i;
  }
}

TEST(FrameDecoder, FuzzRandomSplitPoints) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    run_split_fuzz(seed, 4096, 200, 2 * kFrameBytes + 7);
  }
}

TEST(FrameDecoder, FuzzByteAtATime) {
  run_split_fuzz(0xfeed, 4096, 64, 1);
}

TEST(FrameDecoder, FuzzTinyRingWrapsConstantly) {
  // Capacity rounds up to 64 = two frames, so nearly every frame
  // straddles the wrap point at some phase.
  for (std::uint64_t seed = 100; seed < 120; ++seed) {
    run_split_fuzz(seed, 33, 150, kFrameBytes + 3);
  }
}

TEST(FrameDecoder, TruncatedFrameNeedsMoreAtEveryPrefixLength) {
  const Frame f = make_frame(7);
  unsigned char wire[kFrameBytes];
  encode_frame(f, wire);
  for (std::size_t len = 0; len < kFrameBytes; ++len) {
    FrameDecoder decoder;
    decoder.feed(wire, len);
    Frame out;
    EXPECT_EQ(decoder.next(out), FrameDecoder::Result::kNeedMore)
        << "prefix " << len;
  }
}

TEST(FrameDecoder, GarbageLengthRejectedAtFourBytes) {
  FrameDecoder decoder;
  const unsigned char garbage[4] = {0xde, 0xad, 0xbe, 0xef};
  decoder.feed(garbage, sizeof(garbage));
  Frame out;
  EXPECT_EQ(decoder.next(out), FrameDecoder::Result::kError);
  EXPECT_STREQ(decoder.error(), "bad frame length");
  // Condemned streams stay condemned.
  EXPECT_EQ(decoder.next(out), FrameDecoder::Result::kError);
}

TEST(FrameDecoder, BadMagicVersionAndOpcodeRejected) {
  struct Case {
    std::size_t corrupt_at;
    unsigned char value;
    const char* reason;
  };
  const Case cases[] = {
      {4, 0x00, "bad magic"},
      {5, 0x00, "bad magic"},
      {6, 9, "unsupported version"},
      {7, 0x00, "unknown opcode"},
      {7, 0x3f, "unknown opcode"},
  };
  for (const Case& c : cases) {
    unsigned char wire[kFrameBytes];
    encode_frame(make_frame(3), wire);
    wire[c.corrupt_at] = c.value;
    FrameDecoder decoder;
    decoder.feed(wire, kFrameBytes);
    Frame out;
    EXPECT_EQ(decoder.next(out), FrameDecoder::Result::kError)
        << "corrupt byte " << c.corrupt_at;
    EXPECT_STREQ(decoder.error(), c.reason);
  }
}

TEST(FrameDecoder, FuzzGarbageBytesNeverDecodeAndNeverTrap) {
  // Random byte soup either parses as kNeedMore (waiting on a length
  // prefix that happens to be valid... which 28 rarely is) or condemns
  // the stream — it must never produce a frame from noise that was not
  // one, and never trip ASan/UBSan.
  math::Rng rng(0xbad);
  for (int trial = 0; trial < 200; ++trial) {
    FrameDecoder decoder(256);
    Frame out;
    bool dead = false;
    for (int chunk = 0; chunk < 8 && !dead; ++chunk) {
      unsigned char bytes[16];
      for (auto& b : bytes) {
        b = static_cast<unsigned char>(rng.next() & 0xff);
      }
      decoder.feed(bytes, sizeof(bytes));
      const FrameDecoder::Result r = decoder.next(out);
      if (r == FrameDecoder::Result::kError) dead = true;
    }
    // 16 random bytes hold a valid v1 length prefix with p = 2^-32; the
    // stream should be condemned essentially always.
    EXPECT_TRUE(dead);
  }
}

TEST(FrameDecoder, CondemnationOutlivesLaterValidFrames) {
  // The adversarial-replay shape: after one malformed frame, a client
  // streaming perfectly valid frames must get nothing back — the
  // connection is the unit of failure, and a condemned decoder may not
  // resynchronize on a frame boundary the attacker chose.
  FrameDecoder decoder;
  unsigned char wire[kFrameBytes];
  encode_frame(make_frame(1), wire);
  Frame out;
  decoder.feed(wire, kFrameBytes);
  ASSERT_EQ(decoder.next(out), FrameDecoder::Result::kFrame);

  unsigned char bad[kFrameBytes];
  encode_frame(make_frame(2), bad);
  bad[7] = 0x3f;  // length-valid, opcode garbage
  decoder.feed(bad, kFrameBytes);
  ASSERT_EQ(decoder.next(out), FrameDecoder::Result::kError);
  EXPECT_STREQ(decoder.error(), "unknown opcode");

  for (int replay = 0; replay < 3; ++replay) {
    encode_frame(make_frame(3 + replay), wire);
    decoder.feed(wire, kFrameBytes);
    EXPECT_EQ(decoder.next(out), FrameDecoder::Result::kError);
    EXPECT_STREQ(decoder.error(), "unknown opcode");  // the original verdict
  }
}

TEST(FrameDecoder, OversizedLengthCondemnsBeforeAnyBodyArrives) {
  // A 2 GiB length prefix must condemn on the 4 prefix bytes alone: the
  // decoder may not wait for (or try to buffer) a body that large, even
  // when valid-looking bytes keep arriving behind the prefix.
  FrameDecoder decoder;
  const unsigned char huge_len[4] = {0xff, 0xff, 0xff, 0x7f};
  decoder.feed(huge_len, sizeof(huge_len));
  Frame out;
  EXPECT_EQ(decoder.next(out), FrameDecoder::Result::kError);
  EXPECT_STREQ(decoder.error(), "bad frame length");

  unsigned char wire[kFrameBytes];
  encode_frame(make_frame(9), wire);
  decoder.feed(wire, kFrameBytes);
  EXPECT_EQ(decoder.next(out), FrameDecoder::Result::kError);
  // Nothing was consumed toward the phantom body: the buffered bytes are
  // exactly what was fed, all stranded behind the condemnation.
  EXPECT_EQ(decoder.buffered_bytes(), 4u + kFrameBytes);
}

TEST(FrameDecoder, WritableSpansCoverExactlyTheFreeRegion) {
  FrameDecoder decoder(64);
  EXPECT_EQ(decoder.capacity(), 64u);
  FrameDecoder::Span spans[2];
  ASSERT_EQ(decoder.writable(spans), 1u);
  EXPECT_EQ(spans[0].size, 64u);

  // Half-fill, drain one frame, refill: the free region wraps → 2 spans.
  unsigned char wire[kFrameBytes];
  encode_frame(make_frame(1), wire);
  decoder.feed(wire, kFrameBytes);
  Frame out;
  ASSERT_EQ(decoder.next(out), FrameDecoder::Result::kFrame);
  const std::size_t count = decoder.writable(spans);
  std::size_t total = 0;
  for (std::size_t s = 0; s < count; ++s) total += spans[s].size;
  EXPECT_EQ(total, decoder.free_bytes());
  EXPECT_EQ(total, 64u);
}

}  // namespace
}  // namespace pqs::net

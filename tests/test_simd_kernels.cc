// The kernel-layer determinism contract: every table the dispatcher can
// select is bit-identical to the scalar reference on every operation —
// fuzzed over random word buffers (including padding-word edge cases and
// universe sizes not divisible by 64) — and estimator results do not change
// when the table changes, at any thread count.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "core/monte_carlo.h"
#include "core/random_subset_system.h"
#include "math/bernoulli.h"
#include "math/rng.h"
#include "quorum/bitset.h"
#include "quorum/mask_batch.h"
#include "quorum/set_system.h"
#include "quorum/threshold.h"
#include "simd/kernels.h"

namespace pqs {
namespace {

std::vector<std::uint64_t> random_words(std::size_t n, math::Rng& rng) {
  std::vector<std::uint64_t> words(n);
  for (auto& w : words) {
    w = rng.next();
    // Sprinkle all-zero / all-one words so carry/saturation paths get hit.
    if (rng.chance(0.1)) w = 0;
    if (rng.chance(0.1)) w = ~0ULL;
  }
  return words;
}

// Restores the dispatched table on scope exit so test order cannot leak a
// forced table into other suites.
class ActiveTableGuard {
 public:
  ActiveTableGuard() : saved_(&simd::active()) {}
  ~ActiveTableGuard() { simd::force(*saved_); }

 private:
  const simd::Kernels* saved_;
};

class KernelEquivalence : public ::testing::TestWithParam<const simd::Kernels*> {
};

TEST_P(KernelEquivalence, WordOpsMatchScalarReference) {
  const simd::Kernels& k = *GetParam();
  const simd::Kernels& ref = simd::scalar();
  math::Rng rng(0x51e7);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::size_t n = rng.below(41);  // 0..40 words (past one zmm block)
    auto a = random_words(n, rng);
    auto b = random_words(n, rng);
    EXPECT_EQ(ref.popcount(a.data(), n), k.popcount(a.data(), n));
    EXPECT_EQ(ref.and_popcount(a.data(), b.data(), n),
              k.and_popcount(a.data(), b.data(), n));
    EXPECT_EQ(ref.and_any(a.data(), b.data(), n),
              k.and_any(a.data(), b.data(), n));
    EXPECT_EQ(ref.andnot_any(a.data(), b.data(), n),
              k.andnot_any(a.data(), b.data(), n));
    EXPECT_EQ(ref.equal(a.data(), b.data(), n),
              k.equal(a.data(), b.data(), n));
    EXPECT_TRUE(k.equal(a.data(), a.data(), n));
    if (n > 0) {
      // Bit bounds both at word boundaries and inside padding-prone words.
      const std::uint32_t nbits =
          static_cast<std::uint32_t>(rng.below(64 * n + 1));
      EXPECT_EQ(ref.popcount_prefix(a.data(), nbits),
                k.popcount_prefix(a.data(), nbits));
      EXPECT_EQ(ref.and_popcount_prefix(a.data(), b.data(), nbits),
                k.and_popcount_prefix(a.data(), b.data(), nbits));
      const std::uint32_t lo = static_cast<std::uint32_t>(rng.below(64 * n));
      EXPECT_EQ(ref.and_popcount_from(a.data(), b.data(), n, lo),
                k.and_popcount_from(a.data(), b.data(), n, lo));
      // Conservation: prefix + from partition the bits of a & b.
      EXPECT_EQ(k.and_popcount(a.data(), b.data(), n),
                k.and_popcount_prefix(a.data(), b.data(), lo) +
                    k.and_popcount_from(a.data(), b.data(), n, lo));
    }
    auto dst_ref = a;
    auto dst_k = a;
    ref.or_accum(dst_ref.data(), b.data(), n);
    k.or_accum(dst_k.data(), b.data(), n);
    EXPECT_EQ(dst_ref, dst_k);
  }
}

TEST_P(KernelEquivalence, BatchOpsMatchPerItemLoops) {
  const simd::Kernels& k = *GetParam();
  const simd::Kernels& ref = simd::scalar();
  math::Rng rng(0xba7c4);
  for (int iter = 0; iter < 300; ++iter) {
    const std::size_t n = 1 + rng.below(20);
    const std::size_t stride = 2 * n;  // the MaskBatch pair layout
    const std::size_t count = rng.below(17);
    auto flat = random_words(stride * count + n, rng);
    const std::uint32_t lo = static_cast<std::uint32_t>(rng.below(64 * n));
    const std::uint32_t nbits =
        static_cast<std::uint32_t>(rng.below(64 * n + 1));
    std::vector<std::uint32_t> out_ref(count, 0), out_k(count, 0);
    ref.batch_and_popcount_from(flat.data(), flat.data() + n, stride, count, n,
                                lo, out_ref.data());
    k.batch_and_popcount_from(flat.data(), flat.data() + n, stride, count, n,
                              lo, out_k.data());
    EXPECT_EQ(out_ref, out_k);
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(out_ref[i], ref.and_popcount_from(flat.data() + i * stride,
                                                  flat.data() + n + i * stride,
                                                  n, lo));
    }
    ref.batch_popcount_prefix(flat.data(), stride, count, nbits,
                              out_ref.data());
    k.batch_popcount_prefix(flat.data(), stride, count, nbits, out_k.data());
    EXPECT_EQ(out_ref, out_k);
  }
}

TEST_P(KernelEquivalence, ColumnAccumulateMatchesBruteForce) {
  const simd::Kernels& k = *GetParam();
  const simd::Kernels& ref = simd::scalar();
  math::Rng rng(0xc01a);
  for (int iter = 0; iter < 300; ++iter) {
    const std::size_t n = rng.below(12);  // words per mask
    const auto a = random_words(n, rng);
    // Accumulation semantics: the kernel adds onto whatever is already in
    // the histogram, so start from a nonzero base and require both tables
    // to land on the same totals.
    std::vector<std::uint64_t> base(64 * n);
    for (auto& c : base) c = rng.below(1000);
    auto out_ref = base;
    auto out_k = base;
    ref.column_accumulate(a.data(), n, out_ref.data());
    k.column_accumulate(a.data(), n, out_k.data());
    EXPECT_EQ(out_ref, out_k);
    for (std::size_t i = 0; i < n; ++i) {
      for (int b = 0; b < 64; ++b) {
        EXPECT_EQ(out_ref[64 * i + b], base[64 * i + b] + ((a[i] >> b) & 1));
      }
    }
  }
}

TEST_P(KernelEquivalence, BatchColumnAccumulateMatchesPerItemLoops) {
  const simd::Kernels& k = *GetParam();
  const simd::Kernels& ref = simd::scalar();
  math::Rng rng(0xba7c5);
  for (int iter = 0; iter < 150; ++iter) {
    const std::size_t n = 1 + rng.below(10);
    // Both batch layouts in use: contiguous masks (the load estimator)
    // and the interleaved pair layout.
    const std::size_t stride = rng.chance(0.5) ? n : 2 * n;
    const std::size_t count = rng.below(33);
    const auto flat = random_words(stride * count + n, rng);
    std::vector<std::uint64_t> base(64 * n);
    for (auto& c : base) c = rng.below(1000);
    auto out_ref = base;
    auto out_k = base;
    auto out_item = base;
    ref.batch_column_accumulate(flat.data(), stride, count, n,
                                out_ref.data());
    k.batch_column_accumulate(flat.data(), stride, count, n, out_k.data());
    EXPECT_EQ(out_ref, out_k);
    for (std::size_t i = 0; i < count; ++i) {
      ref.column_accumulate(flat.data() + i * stride, n, out_item.data());
    }
    EXPECT_EQ(out_ref, out_item);
  }
}

TEST_P(KernelEquivalence, BatchColumnAccumulateSurvivesLongDenseBatches) {
  // 300 all-ones masks would overflow a single-byte vertical counter: the
  // implementations must chunk. Every counter ends exactly base + 300.
  const simd::Kernels& k = *GetParam();
  const std::size_t n = 3;
  const std::size_t count = 300;
  std::vector<std::uint64_t> flat(n * count, ~0ULL);
  std::vector<std::uint64_t> counts(64 * n, 7);
  k.batch_column_accumulate(flat.data(), n, count, n, counts.data());
  for (const std::uint64_t c : counts) {
    ASSERT_EQ(c, 307u);
  }
}

TEST_P(KernelEquivalence, BernoulliFillMatchesScalarReference) {
  const simd::Kernels& k = *GetParam();
  const simd::Kernels& ref = simd::scalar();
  math::Rng rng(0x6e60);
  const double ps[] = {0.5,    0.25,   0.3,   0.75,  1.0 / 3.0, 0.999,
                       1e-3,   1e-7,   1e-12, 0.125, 0.9999999, 0.0117};
  for (double p : ps) {
    const math::BernoulliBlockSampler sampler(p);
    for (bool invert : {false, true}) {
      const simd::BernoulliSpec spec = sampler.spec(invert);
      for (std::size_t n : {1u, 2u, 7u, 8u, 9u, 16u, 31u, 157u}) {
        const std::uint64_t seed = rng.next();
        std::vector<std::uint64_t> out_ref(n, 0xabababababababab),
            out_k(n, 0xcdcdcdcdcdcdcdcd);
        ref.bernoulli_fill(out_ref.data(), n, spec, seed);
        k.bernoulli_fill(out_k.data(), n, spec, seed);
        EXPECT_EQ(out_ref, out_k) << "p=" << p << " n=" << n;
      }
    }
  }
}

TEST_P(KernelEquivalence, BernoulliFillHitsTheTargetRate) {
  // Statistical sanity for the lane-stream contract itself (the scalar
  // reference defines the stream; this checks it actually samples p).
  const simd::Kernels& k = *GetParam();
  for (double p : {0.1, 0.5, 0.83}) {
    const math::BernoulliBlockSampler sampler(p);
    const simd::BernoulliSpec spec = sampler.spec(false);
    math::Rng rng(99);
    const std::size_t words = 4096;
    std::vector<std::uint64_t> buf(words);
    std::uint64_t ones = 0;
    for (int rep = 0; rep < 4; ++rep) {
      k.bernoulli_fill(buf.data(), words, spec, rng.next());
      ones += simd::scalar().popcount(buf.data(), words);
    }
    const double trials = 4.0 * 64.0 * static_cast<double>(words);
    const double rate = static_cast<double>(ones) / trials;
    // ~1M trials: 5 sigma of sqrt(p(1-p)/n) stays well under 0.005.
    EXPECT_NEAR(rate, p, 0.005) << "kernel=" << k.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTables, KernelEquivalence, ::testing::ValuesIn(simd::available()),
    [](const ::testing::TestParamInfo<const simd::Kernels*>& info) {
      return std::string(info.param->name);
    });

// ---- QuorumBitset routing --------------------------------------------------

TEST(QuorumBitsetKernels, MethodsMatchBruteForceOnUnevenUniverses) {
  math::Rng rng(0xb17);
  for (std::uint32_t n : {1u, 63u, 64u, 65u, 100u, 127u, 128u, 300u, 901u}) {
    quorum::QuorumBitset a(n), b(n);
    std::vector<bool> va(n), vb(n);
    for (std::uint32_t u = 0; u < n; ++u) {
      if (rng.chance(0.4)) {
        a.set(u);
        va[u] = true;
      }
      if (rng.chance(0.4)) {
        b.set(u);
        vb[u] = true;
      }
    }
    std::uint32_t count_a = 0, inter = 0;
    bool subset = true;
    for (std::uint32_t u = 0; u < n; ++u) {
      count_a += va[u];
      inter += va[u] && vb[u];
      subset = subset && (!vb[u] || va[u]);
    }
    EXPECT_EQ(a.count(), count_a);
    EXPECT_EQ(a.intersection_count(b), inter);
    EXPECT_EQ(a.intersects(b), inter > 0);
    EXPECT_EQ(a.contains_all(b), subset);
    const std::uint32_t bound = static_cast<std::uint32_t>(rng.below(n + 1));
    std::uint32_t below = 0, from = 0;
    for (std::uint32_t u = 0; u < n; ++u) {
      if (u < bound && va[u]) ++below;
      if (u >= bound && va[u] && vb[u]) ++from;
    }
    EXPECT_EQ(a.count_below(bound), below);
    EXPECT_EQ(a.intersection_count_from(b, bound), from);
    quorum::QuorumBitset u_mask = a;
    u_mask.or_with(b);
    for (std::uint32_t u = 0; u < n; ++u) {
      EXPECT_EQ(u_mask.test(u), va[u] || vb[u]);
    }
    EXPECT_TRUE(a.equals(a));
    EXPECT_EQ(a.equals(b), a.contains_all(b) && b.contains_all(a));
  }
}

TEST(MaskBatch, ViewsShareOneFlatBuffer) {
  const std::uint32_t n = 130;  // 3 words, 62 padding bits
  quorum::MaskBatch batch(n, 5);
  EXPECT_EQ(batch.words_per_mask(), 3u);
  for (std::size_t i = 0; i < batch.count(); ++i) {
    quorum::QuorumBitset& m = batch.mask(i);
    EXPECT_EQ(m.universe_size(), n);
    m.set(static_cast<quorum::ServerId>(i));
    m.set(n - 1);
    EXPECT_EQ(m.words(), batch.words() + i * batch.words_per_mask());
  }
  // Writes through one view land in the flat buffer, not a private copy.
  EXPECT_EQ(batch.words()[0], 1ULL);
  EXPECT_EQ(batch.words()[1 * 3], 2ULL);
  // Copying a view detaches it into an owning bitset.
  quorum::QuorumBitset copy = batch.mask(2);
  copy.set(77);
  EXPECT_FALSE(batch.mask(2).test(77));
  EXPECT_TRUE(copy.test(2) && copy.test(n - 1));
}

TEST(MaskBatch, SampleMasksFillsViewsLikeOwnedBitsets) {
  const quorum::ThresholdSystem sys(100, 51);
  math::Rng rng_batch(7), rng_own(7);
  quorum::MaskBatch batch(100, 8);
  sys.sample_masks(batch.masks(), 8, rng_batch);
  std::vector<quorum::QuorumBitset> own(8, quorum::QuorumBitset(100));
  sys.sample_masks(own.data(), 8, rng_own);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(batch.mask(i).equals(own[i])) << i;
  }
  EXPECT_EQ(rng_batch.next(), rng_own.next());
}

TEST(MaskBatch, AssigningSampleMaskWritesThroughTheView) {
  // Regression: SetSystem::sample_mask fills by whole-bitset assignment
  // (`out = stored_mask`); a view must receive the words in place — never
  // silently detach into a private copy that leaves the flat buffer zero.
  const auto sys = quorum::SetSystem::all_subsets(7, 4);
  math::Rng rng_batch(11), rng_own(11);
  quorum::MaskBatch batch(7, 6);
  sys.sample_masks(batch.masks(), 6, rng_batch);
  std::vector<quorum::QuorumBitset> own(6, quorum::QuorumBitset(7));
  sys.sample_masks(own.data(), 6, rng_own);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(batch.mask(i).is_view()) << i;
    EXPECT_TRUE(batch.mask(i).equals(own[i])) << i;
    EXPECT_EQ(batch.mask(i).words(), batch.words() + i) << i;
    EXPECT_EQ(batch.words()[i], own[i].words()[0]) << i;
  }
  // And the estimator built on the flat buffer agrees with ground truth:
  // any two 4-subsets of a 7-universe intersect, so the rate is zero.
  math::Rng rng(123);
  core::Estimator engine({1});
  const auto est = core::estimate_nonintersection(sys, 5000, rng, engine);
  EXPECT_EQ(est.successes(), 0u);
}

TEST(QuorumBitsetKernels, ResizeToZeroStaysOwningAndRegrows) {
  quorum::QuorumBitset m(100);
  m.set(99);
  m.resize(0);
  EXPECT_FALSE(m.is_view());
  m.resize(64);  // must reallocate, not trip the view guard
  EXPECT_EQ(m.universe_size(), 64u);
  EXPECT_EQ(m.count(), 0u);
  m.set(63);
  EXPECT_EQ(m.count(), 1u);
}

// ---- estimator invariance ---------------------------------------------------

TEST(KernelDispatch, EstimatorResultsIdenticalAcrossTablesAndThreads) {
  ActiveTableGuard guard;
  const core::RandomSubsetSystem sys(150, 40);
  struct Key {
    std::uint64_t a, b, c, d, e, f, g, h;
    bool operator==(const Key& o) const {
      return a == o.a && b == o.b && c == o.c && d == o.d && e == o.e &&
             f == o.f && g == o.g && h == o.h;
    }
  };
  std::vector<Key> results;
  for (const simd::Kernels* table : simd::available()) {
    simd::force(*table);
    for (unsigned threads : {1u, 8u}) {
      core::Estimator engine({threads});
      math::Rng rng(20260727);
      const auto ni = core::estimate_nonintersection(sys, 20000, rng, engine);
      const auto de =
          core::estimate_dissemination_epsilon(sys, 12, 20000, rng, engine);
      const auto ma =
          core::estimate_masking_epsilon(sys, 12, 7, 20000, rng, engine);
      const auto fp =
          core::estimate_failure_probability(sys, 0.6, 20000, rng, engine);
      results.push_back(Key{ni.successes(), ni.trials(), de.successes(),
                            de.trials(), ma.successes(), ma.trials(),
                            fp.successes(), fp.trials()});
    }
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_TRUE(results[i] == results[0]) << "combination " << i;
  }
}

TEST(KernelDispatch, LoadProfileIdenticalAcrossTablesAndThreads) {
  // The column-accumulate path: per-server hit counts are exact integer
  // sums, so the whole profile must be bit-identical whichever table
  // tallies it, at any thread count (150 servers = a padding-bit universe).
  ActiveTableGuard guard;
  const core::RandomSubsetSystem sys(150, 40);
  std::vector<stats::LoadProfile> results;
  for (const simd::Kernels* table : simd::available()) {
    simd::force(*table);
    for (unsigned threads : {1u, 8u}) {
      core::Estimator engine({threads});
      math::Rng rng(20260727);
      results.push_back(core::estimate_load_profile(sys, 20000, rng, engine));
    }
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_TRUE(results[i] == results[0]) << "combination " << i;
  }
}

TEST(KernelDispatch, ScalarIsAlwaysAvailableAndFirst) {
  const auto tables = simd::available();
  ASSERT_FALSE(tables.empty());
  EXPECT_STREQ(tables[0]->name, "scalar");
  EXPECT_NE(simd::find("scalar"), nullptr);
  EXPECT_EQ(simd::find("not-an-isa"), nullptr);
}

}  // namespace
}  // namespace pqs

#!/usr/bin/env python3
"""Link checker for the repo's markdown docs.

Validates every inline markdown link and image in the given files:

  * relative file targets must exist (relative to the containing file);
  * `#fragment` anchors into markdown files (or the same file) must match
    a heading's GitHub-style slug;
  * absolute URLs (http/https/mailto) are skipped — CI must not depend on
    the network, and external link rot is not a build failure.

Usage: check_md_links.py FILE.md [FILE.md ...]
Exits nonzero listing every broken link.
"""
import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
FENCE_RE = re.compile(r"^(```|~~~)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp:")


def strip_fences(lines):
    # Fenced lines become empty strings (not dropped) so the enumerate()
    # in check_file keeps reporting real line numbers.
    out, fenced = [], False
    for line in lines:
        if FENCE_RE.match(line.strip()):
            fenced = not fenced
            out.append("")
            continue
        out.append("" if fenced else line)
    return out


def github_slug(heading):
    # Drop inline code/emphasis markers, lower-case, strip punctuation,
    # hyphenate spaces — the GitHub anchor algorithm, minus dedup suffixes.
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path):
    slugs = set()
    lines = strip_fences(path.read_text(encoding="utf-8").splitlines())
    for line in lines:
        m = HEADING_RE.match(line)
        if m:
            slugs.add(github_slug(m.group(1)))
    return slugs


def check_file(md_path):
    errors = []
    lines = strip_fences(md_path.read_text(encoding="utf-8").splitlines())
    for lineno, line in enumerate(lines, 1):
        for m in LINK_RE.finditer(line):
            target = m.group(1)
            if target.startswith(SKIP_SCHEMES):
                continue
            path_part, _, fragment = target.partition("#")
            dest = (
                md_path
                if not path_part
                else (md_path.parent / path_part).resolve()
            )
            if not dest.exists():
                errors.append(f"{md_path}:{lineno}: missing target {target}")
                continue
            if fragment and dest.suffix.lower() == ".md":
                if fragment not in anchors_of(dest):
                    errors.append(
                        f"{md_path}:{lineno}: no heading for anchor "
                        f"#{fragment} in {dest.name}"
                    )
    return errors


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    all_errors = []
    checked = 0
    for arg in sys.argv[1:]:
        path = Path(arg)
        if not path.exists():
            all_errors.append(f"{arg}: file not found")
            continue
        checked += 1
        all_errors.extend(check_file(path))
    for err in all_errors:
        print(err)
    if all_errors:
        print(f"FAIL: {len(all_errors)} broken links across {checked} files")
        return 1
    print(f"OK: links valid in {checked} markdown files")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env bash
# clang-format conformance check over the code this repo owns.
#
#   tools/check_format.sh          # report files that would be reformatted
#   tools/check_format.sh --fix    # rewrite them in place instead
#
# Exits nonzero (without --fix) when any file differs from the committed
# .clang-format style, printing a unified diff per offender. The CI
# format-check job currently runs this non-blocking; once the tree gets
# its one-time bulk reformat, the job flips to blocking and this script's
# exit code becomes the gate.
set -u

cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-}"
if [ -z "$CLANG_FORMAT" ]; then
  for candidate in clang-format clang-format-18 clang-format-17 \
                   clang-format-16 clang-format-15 clang-format-14; do
    if command -v "$candidate" >/dev/null 2>&1; then
      CLANG_FORMAT="$candidate"
      break
    fi
  done
fi
if [ -z "$CLANG_FORMAT" ]; then
  # A missing formatter is an environment gap, not a style violation:
  # exit clean with an unambiguous SKIP so local runs and minimal CI
  # containers don't report a formatting failure they can't act on. The
  # CI format-check job installs clang-format explicitly, so the real
  # check still runs where it matters.
  echo "check_format.sh: SKIP — clang-format not found on PATH" \
       "(install it or set CLANG_FORMAT=/path/to/clang-format to run" \
       "the check)"
  exit 0
fi

fix=0
if [ "${1:-}" = "--fix" ]; then
  fix=1
fi

status=0
checked=0
offenders=0
while IFS= read -r file; do
  checked=$((checked + 1))
  if [ "$fix" = 1 ]; then
    "$CLANG_FORMAT" -i "$file"
  elif ! diff -u --label "$file" --label "$file (formatted)" \
        "$file" <("$CLANG_FORMAT" "$file"); then
    offenders=$((offenders + 1))
    status=1
  fi
done < <(find src tests bench -name '*.cc' -o -name '*.h' | sort)

if [ "$fix" = 1 ]; then
  echo "check_format.sh: reformatted $checked files in place"
elif [ "$status" = 0 ]; then
  echo "check_format.sh: $checked files clean"
else
  echo "check_format.sh: $offenders of $checked files need formatting" \
       "(run tools/check_format.sh --fix)" >&2
fi
exit "$status"
